"""The health observatory: sketches, SLO grading, detectors, live watch.

Four layers of evidence, mirroring the subsystem's own guarantees:

* **Sketch accuracy** — hypothesis-driven: every DDSketch quantile is
  within the configured relative error of the exact nearest-rank sample,
  and a split-merge reduces bit-for-bit to the single-stream sketch.
* **Collector determinism** — sharding a record stream across collectors
  and merging (in any order) equals the serial collector exactly; the
  golden scenario's records stay bit-identical with health enabled.
* **SLO semantics** — windows grade against the first matching target,
  violation spans coalesce, burn rates divide violating fraction by the
  error budget, and the JSON stays NaN-free.
* **Run-dir contract** — serial and sharded (2 and 4 shard) exports of
  the golden scenario produce byte-identical ``health.json`` /
  ``slo.jsonl`` / ``health.prom``; ``repro health`` / ``repro watch`` /
  ``repro inspect`` read them back, with graceful health-off fallbacks.
"""

import io
import json
import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.golden_scenario import GOLDEN_PATH, normalized, run_scenario
from tests.test_cluster_shard import FUNCTIONS, GOLDEN_CONFIG, golden_plan
from repro.cli import main
from repro.cluster_shard import ShardingUnavailable, run_sharded_replay
from repro.health import (
    Alert,
    DDSketch,
    EwmaDetector,
    HealthCollector,
    HealthConfig,
    LiveWriter,
    SLOTarget,
    WindowedSketch,
    detect_anomalies,
    evaluate_health,
    health_report,
    health_section,
    load_health,
    normalize_health,
    read_live,
    sparkline,
    summaries_health,
    watch,
    watch_report,
    window_index,
)
from repro.health.detectors import COOLDOWN_SAMPLES, WARMUP_SAMPLES
from repro.metrics.registry import InvocationRecord, Outcome
from repro.telemetry import (
    WORKER_COLUMNS,
    Telemetry,
    TelemetryConfig,
    Timeseries,
    load_run,
)

HEALTH_TC = TelemetryConfig(interval=1.0, sample_energy=True, health=True)


# ---------------------------------------------------------------- sketches
positive_samples = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(samples=positive_samples, q=st.floats(min_value=0.0, max_value=100.0))
def test_sketch_quantile_within_relative_error(samples, q):
    a = 0.01
    sketch = DDSketch(relative_accuracy=a)
    for x in samples:
        sketch.observe(x)
    rank = max(1, math.ceil(q / 100.0 * len(samples)))
    exact = sorted(samples)[rank - 1]
    assert abs(sketch.quantile(q) - exact) <= a * exact + 1e-12


@settings(max_examples=100, deadline=None)
@given(samples=positive_samples, cut=st.integers(min_value=0, max_value=200))
def test_sketch_split_merge_is_bit_identical(samples, cut):
    cut = min(cut, len(samples))
    whole = DDSketch()
    for x in samples:
        whole.observe(x)
    left, right = DDSketch(), DDSketch()
    for x in samples[:cut]:
        left.observe(x)
    for x in samples[cut:]:
        right.observe(x)
    # Merge in both orders: the result must equal the single stream.
    right.merge(left)
    left_copy = DDSketch()
    for x in samples[:cut]:
        left_copy.observe(x)
    for x in samples[cut:]:
        left_copy.observe(x)
    assert right.counts == whole.counts
    assert right == left_copy == whole
    for q in (0.0, 50.0, 90.0, 99.0, 100.0):
        assert right.quantile(q) == whole.quantile(q)


def test_sketch_merge_rejects_mismatched_geometry():
    with pytest.raises(ValueError, match="relative_accuracy 0.01 vs 0.05"):
        DDSketch(relative_accuracy=0.01).merge(DDSketch(relative_accuracy=0.05))
    with pytest.raises(ValueError, match="min_value"):
        DDSketch(min_value=1e-9).merge(DDSketch(min_value=1e-6))


def test_sketch_validation_and_edge_samples():
    with pytest.raises(ValueError, match="relative_accuracy"):
        DDSketch(relative_accuracy=1.5)
    with pytest.raises(ValueError, match="min_value"):
        DDSketch(min_value=0.0)
    sketch = DDSketch()
    with pytest.raises(ValueError, match="non-negative"):
        sketch.observe(-1.0)
    with pytest.raises(ValueError, match="non-negative"):
        sketch.observe(float("nan"))
    with pytest.raises(ValueError, match="q must be"):
        sketch.quantile(101.0)
    assert math.isnan(sketch.quantile(50.0))  # empty
    # Zero-bucket samples report 0.0 (absolute error <= min_value).
    sketch.observe(0.0)
    assert sketch.zero_count == 1
    assert sketch.quantile(50.0) == 0.0
    assert sketch.minimum == 0.0


def test_sketch_merge_empty_is_identity():
    sketch = DDSketch()
    for x in (0.5, 1.0, 2.0):
        sketch.observe(x)
    before_counts = dict(sketch.counts)
    sketch.merge(DDSketch())
    assert sketch.counts == before_counts
    assert sketch.count == 3
    empty = DDSketch()
    empty.merge(sketch)
    assert empty == sketch


def test_sketch_pickle_round_trip():
    sketch = DDSketch()
    for x in (0.01, 0.5, 3.0, 250.0):
        sketch.observe(x)
    clone = pickle.loads(pickle.dumps(sketch))
    assert clone == sketch
    assert clone.quantile(99.0) == sketch.quantile(99.0)


def test_window_index_grid():
    assert window_index(0.0, 10.0) == 0
    assert window_index(9.999, 10.0) == 0
    assert window_index(10.0, 10.0) == 1
    assert window_index(25.0, 2.5) == 10


def test_windowed_sketch_buckets_by_window_and_merges():
    ws = WindowedSketch(window=10.0)
    ws.observe(1.0, 0.5)
    ws.observe(12.0, 1.5)
    ws.observe(13.0, 2.5)
    assert ws.window_indices() == [0, 1]
    assert ws.count == 3
    assert ws.sketch(0).count == 1
    assert ws.sketch(5) is None
    other = WindowedSketch(window=10.0)
    other.observe(12.5, 3.5)
    ws.merge(other)
    assert ws.sketch(1).count == 3
    merged = ws.merged()
    assert merged.count == 4
    with pytest.raises(ValueError, match="different windows"):
        ws.merge(WindowedSketch(window=5.0))
    with pytest.raises(ValueError, match="window must be positive"):
        WindowedSketch(window=0.0)


# --------------------------------------------------------------- collector
def _record(function="f.1", arrival=1.0, outcome=Outcome.WARM, e2e=0.5,
            queue=0.1, overhead=0.2, cold=False, worker="w0"):
    return InvocationRecord(
        function=function, arrival=arrival, outcome=outcome,
        exec_time=e2e - overhead, e2e_time=e2e, queue_time=queue,
        overhead=overhead, cold=cold, worker=worker,
    )


def test_collector_observe_record_outcomes():
    c = HealthCollector(window=10.0)
    c.observe_record(_record(arrival=1.0, e2e=0.5))
    c.observe_record(_record(arrival=2.0, e2e=0.7, cold=True,
                             outcome=Outcome.COLD))
    c.observe_record(_record(arrival=3.0, outcome=Outcome.DROPPED))
    c.observe_record(_record(arrival=4.0, outcome=Outcome.TIMEOUT))
    totals = c.totals()
    assert totals == {"total": 4, "completed": 2, "cold": 1, "dropped": 2}
    assert c.functions() == ["f.1"]
    assert c.workers() == ["w0"]
    assert c.window_range() == (0, 0)
    # Completed invocations land in the window of arrival + e2e.
    c.observe_record(_record(arrival=9.8, e2e=0.5))
    assert c.window_range() == (0, 1)


def test_collector_shard_merge_equals_serial():
    records = [
        _record(function=f"fn-{i % 3}.1", arrival=float(i), e2e=0.1 * (i + 1),
                cold=(i % 4 == 0), worker=f"w{i % 2}",
                outcome=Outcome.COLD if i % 4 == 0 else Outcome.WARM)
        for i in range(40)
    ]
    records.append(_record(function="fn-0.1", arrival=7.0,
                           outcome=Outcome.DROPPED))
    serial = HealthCollector(window=5.0)
    for r in records:
        serial.observe_record(r)
    shards = [HealthCollector(window=5.0) for _ in range(4)]
    for i, r in enumerate(records):
        shards[i % 4].observe_record(r)
    # Merge in reverse shard order: order independence is the contract.
    merged = HealthCollector(window=5.0)
    for part in reversed(shards):
        merged.merge(part)
    assert merged == serial
    assert pickle.loads(pickle.dumps(merged)) == serial


def test_collector_merge_rejects_mismatched_config():
    with pytest.raises(ValueError, match="window 10.0 vs 5.0"):
        HealthCollector(window=10.0).merge(HealthCollector(window=5.0))
    with pytest.raises(ValueError, match="relative_accuracy"):
        HealthCollector(relative_accuracy=0.01).merge(
            HealthCollector(relative_accuracy=0.02))


def test_collector_validation():
    with pytest.raises(ValueError, match="window"):
        HealthCollector(window=-1.0)
    with pytest.raises(ValueError, match="relative_accuracy"):
        HealthCollector(relative_accuracy=2.0)


# --------------------------------------------------------------------- SLO
def test_slo_target_matching_first_wins():
    config = HealthConfig(targets=(
        SLOTarget(function="fn-a*", e2e_p99_s=1.0),
        SLOTarget(function="*", e2e_p99_s=5.0),
    ))
    assert config.target_for("fn-a.1").e2e_p99_s == 1.0
    assert config.target_for("fn-b.1").e2e_p99_s == 5.0
    narrow = HealthConfig(targets=(SLOTarget(function="fn-a*"),))
    assert narrow.target_for("other.1") is None


def test_health_config_validation():
    for bad in (
        dict(window=0.0),
        dict(relative_accuracy=0.0),
        dict(availability=1.0),
        dict(burn_windows=(0,)),
        dict(ewma_alpha=0.0),
        dict(z_threshold=0.0),
        dict(cold_storm_min=0),
        dict(live_interval=0.0),
    ):
        with pytest.raises(ValueError):
            HealthConfig(**bad)


def test_normalize_health():
    assert normalize_health(None) is None
    assert normalize_health(False) is None
    assert normalize_health(True) == HealthConfig()
    cfg = HealthConfig(window=2.0)
    assert normalize_health(cfg) is cfg
    with pytest.raises(TypeError, match="health must be"):
        normalize_health("yes")
    assert TelemetryConfig(health=True).health == HealthConfig()
    assert TelemetryConfig(health=None).health is None


def test_evaluate_health_grades_windows_and_spans():
    config = HealthConfig(
        window=10.0, detectors=False,
        targets=(SLOTarget(function="*", e2e_p99_s=1.0, cold_ratio=0.5,
                           drop_ratio=0.5),),
        availability=0.9, burn_windows=(2,),
    )
    c = config.collector()
    # Windows 0 and 1 violate the p99 ceiling (e2e 3s), window 3 is
    # healthy (e2e 0.1s), window 2 has no traffic (gap).
    for arrival in (1.0, 2.0, 11.0):
        c.observe_record(_record(arrival=arrival, e2e=3.0))
    c.observe_record(_record(arrival=30.0, e2e=0.1))
    report = evaluate_health(c, config=config)
    rows = report.rows
    assert [r["window"] for r in rows] == [0, 1, 3]
    assert rows[0]["violations"] == ["e2e_p99>1"]
    assert rows[0]["ok"] is False
    assert rows[2]["violations"] == []
    fn = report.health["functions"]["f.1"]
    assert fn["violating_windows"] == 2
    assert fn["spans"] == [{
        "start_window": 0, "end_window": 1, "windows": 2,
        "t0": 0.0, "t1": 20.0,
    }]
    # Trailing-2 worst violating fraction is 2/2 = 1.0; budget is 0.1.
    assert fn["burn_rates"]["2"] == pytest.approx(10.0)
    assert report.health["worst_burn"] == {
        "rate": pytest.approx(10.0), "function": "f.1",
    }
    totals = report.health["totals"]
    assert totals["violating_windows"] == 2
    assert totals["slo_rows"] == 3
    # Strict JSON: no NaN anywhere in the artifacts.
    json.loads(json.dumps(report.health, allow_nan=False))
    for row in rows:
        json.loads(json.dumps(row, allow_nan=False))


def test_evaluate_health_dropped_only_window_has_null_quantiles():
    config = HealthConfig(window=10.0, detectors=False)
    c = config.collector()
    c.observe_record(_record(arrival=1.0, outcome=Outcome.DROPPED))
    report = evaluate_health(c, config=config)
    (row,) = report.rows
    assert row["e2e_p99"] is None
    assert row["cold_ratio"] is None
    assert row["drop_ratio"] == 1.0
    assert "drop_ratio>0.01" in row["violations"]
    assert report.health["functions"]["f.1"]["e2e"] is None


def test_evaluate_health_rejects_mismatched_collector():
    with pytest.raises(ValueError, match="does not match"):
        evaluate_health(HealthCollector(window=5.0),
                        config=HealthConfig(window=10.0))


def test_summaries_health_rolls_up_plan_rows():
    config = HealthConfig(window=10.0, detectors=False,
                          targets=(SLOTarget(e2e_p99_s=1.0),))
    fqdns = ["a.1", "b.1", "a.1", "b.1"]
    timestamps = [1.0, 2.0, 11.0, 12.0]
    rows = [
        (0, False, True, True, 3.0, 0.1),   # violates in window 0
        (1, False, True, False, 0.2, 0.1),
        (2, False, True, False, 0.3, 0.1),
        (3, True, False, False, 0.0, 0.0),  # dropped -> drop_ratio 1.0
    ]
    out = summaries_health(fqdns, timestamps, rows, config=config)
    assert out["slo_violations"] == 2  # a.1 window 0 (p99), b.1 window 1 (drop)
    assert out["slo_rows"] == 4
    assert out["alerts"] == 0
    assert out["worst_burn_rate"] > 0
    assert out["worst_burn_function"] in ("a.1", "b.1")


# --------------------------------------------------------------- detectors
def test_ewma_detector_fires_on_spike_after_warmup():
    det = EwmaDetector(alpha=0.3, z_threshold=4.0)
    for _ in range(WARMUP_SAMPLES):
        assert det.update(1.0) is None  # flat baseline, still warming up
    fired = det.update(50.0)
    assert fired is not None
    z, baseline = fired
    assert z >= 4.0
    assert baseline < 50.0
    # A detector that only ever saw warmup samples never fires, even on
    # an enormous excursion.
    fresh = EwmaDetector(alpha=0.3, z_threshold=4.0)
    for _ in range(WARMUP_SAMPLES - 1):
        fresh.update(1.0)
    assert fresh.update(1e6) is None


def test_ewma_detector_cooldown_suppresses_sustained_excursion():
    det = EwmaDetector(alpha=0.1, z_threshold=4.0)
    for _ in range(WARMUP_SAMPLES):
        det.update(1.0)
    assert det.update(100.0) is not None
    # Samples still above threshold during cooldown stay quiet, and do
    # not burn cooldown credit either.
    follow_ups = [det.update(100.0) for _ in range(3)]
    assert follow_ups == [None, None, None]
    # Quiet samples drain the cooldown; the next spike fires again.
    for _ in range(COOLDOWN_SAMPLES + WARMUP_SAMPLES):
        det.update(1.0)
    assert det.update(1000.0) is not None


def _worker_series(rows):
    ts = Timeseries(WORKER_COLUMNS)
    for row in rows:
        full = {c: 0.0 for c in WORKER_COLUMNS}
        full.update(row)
        ts.append(*[full[c] for c in WORKER_COLUMNS])
    return ts


def test_detect_anomalies_queue_spike_and_idle_collapse():
    rows = [{"t": float(i), "queue_depth": 1.0, "warm_containers": 2.0}
            for i in range(8)]
    rows.append({"t": 8.0, "queue_depth": 50.0, "warm_containers": 2.0})
    rows.append({"t": 9.0, "queue_depth": 3.0, "warm_containers": 0.0})
    series = {"worker-0": _worker_series(rows)}
    config = HealthConfig(window=10.0)
    alerts = detect_anomalies(series, config.collector(), config)
    kinds = [a.kind for a in alerts]
    assert kinds == ["queue_depth_spike", "idle_worker_collapse"]
    spike = alerts[0]
    assert spike.entity == "worker-0"
    assert spike.t == 8.0
    assert spike.severity == "critical"  # 50 sigma >> 2x threshold
    assert "queue depth" in spike.message
    assert isinstance(spike, Alert)
    assert spike.as_dict()["kind"] == "queue_depth_spike"


def test_detect_anomalies_memory_pressure():
    rows = [{"t": float(i), "memory_used_mb": 100.0} for i in range(8)]
    rows.append({"t": 8.0, "memory_used_mb": 4000.0})
    series = {"worker-0": _worker_series(rows)}
    config = HealthConfig(window=10.0)
    alerts = detect_anomalies(series, config.collector(), config)
    assert [a.kind for a in alerts] == ["memory_pressure"]


def test_detect_anomalies_cold_start_storm():
    config = HealthConfig(window=10.0, cold_storm_min=4)
    c = config.collector()
    # Calm baseline windows, then a burst of cold starts.
    for w in range(8):
        c.observe_record(_record(arrival=w * 10.0 + 1.0, e2e=0.5))
    for i in range(10):
        c.observe_record(_record(arrival=81.0 + 0.1 * i, e2e=0.5, cold=True,
                                 outcome=Outcome.COLD))
    alerts = detect_anomalies({}, c, config)
    assert [a.kind for a in alerts] == ["cold_start_storm"]
    assert alerts[0].entity == "cluster"
    assert alerts[0].value == 10.0


def test_detect_anomalies_skips_non_worker_series():
    lb = Timeseries(("t", "load"))
    lb.append(0.0, 1.0)
    config = HealthConfig()
    assert detect_anomalies({"lb": lb}, config.collector(), config) == []


# -------------------------------------------------------------- live/watch
def test_live_writer_and_read_live(tmp_path):
    path = tmp_path / "live.jsonl"
    with LiveWriter(path) as writer:
        writer.heartbeat({"t": 1.0, "total": 5})
        writer.heartbeat({"t": 2.0, "total": 9, "done": True})
    # A torn final line (writer killed mid-append) is skipped.
    with open(path, "a") as fh:
        fh.write('{"t": 3.0, "tot')
    beats = read_live(path)
    assert [b["t"] for b in beats] == [1.0, 2.0]
    assert read_live(tmp_path / "missing.jsonl") == []


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([None, None]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"


def test_watch_report_frames(tmp_path):
    text, done = watch_report(tmp_path)
    assert "no live heartbeats yet" in text
    assert done is False
    with LiveWriter(tmp_path / "live.jsonl") as writer:
        writer.heartbeat({"t": 10.0, "engine": "serial", "total": 100,
                          "completed": 90, "cold": 5, "dropped": 0,
                          "queue_depth": 3, "running": 2, "e2e_p99": 0.25})
    text, done = watch_report(tmp_path)
    assert not done
    assert "[serial]" in text
    assert "100 total" in text
    assert "250.0ms" in text
    with open(tmp_path / "live.jsonl", "a") as fh:
        fh.write(json.dumps({"t": 20.0, "engine": "serial", "total": 120,
                             "done": True}) + "\n")
    text, done = watch_report(tmp_path)
    assert done
    assert "run complete" in text


def test_watch_loop_stops_on_done(tmp_path):
    with LiveWriter(tmp_path / "live.jsonl") as writer:
        writer.heartbeat({"t": 1.0, "done": True})
    out = io.StringIO()
    frames = watch(tmp_path, stream=out)
    assert frames == 1
    assert "run complete" in out.getvalue()
    frames = watch(tmp_path, once=True, stream=io.StringIO())
    assert frames == 1


def test_watch_respects_max_frames(tmp_path):
    with LiveWriter(tmp_path / "live.jsonl") as writer:
        writer.heartbeat({"t": 1.0})
    out = io.StringIO()
    assert watch(tmp_path, interval=0.0, max_frames=3, stream=out) == 3


# -------------------------------------------------- run dirs + golden A/B
@pytest.fixture(scope="module")
def health_run(tmp_path_factory):
    """The golden scenario with health enabled, exported to a run dir."""
    run_dir = tmp_path_factory.mktemp("health") / "run"
    reduction, telemetry = run_scenario(
        HEALTH_TC, return_telemetry=True,
        live_path=run_dir / "live.jsonl",
    )
    telemetry.export(run_dir)
    return run_dir, reduction


def test_health_on_records_stay_bit_identical(health_run):
    _, reduction = health_run
    golden = json.loads(GOLDEN_PATH.read_text())
    replay = normalized(reduction)
    assert replay["records"] == golden["records"]
    assert replay["spans"] == golden["spans"]


def test_health_run_dir_artifacts(health_run):
    run_dir, _ = health_run
    for name in ("health.json", "slo.jsonl", "health.prom", "live.jsonl"):
        assert (run_dir / name).exists(), name
    health, slo_rows = load_health(run_dir)
    assert health["version"] == 1
    assert health["totals"]["total"] == 42
    assert health["totals"]["slo_rows"] == len(slo_rows)
    assert slo_rows and all("violations" in r for r in slo_rows)
    # The summary/manifest advertise the health config only when on.
    data = load_run(run_dir)
    assert "health" in data["summary"]["config"]
    assert data["health"] == health
    assert data["slo"] == slo_rows
    beats = read_live(run_dir / "live.jsonl")
    assert beats and beats[-1]["done"] is True
    assert beats[-1]["total"] == 42


def test_health_off_run_dir_has_no_health_artifacts(tmp_path):
    _, telemetry = run_scenario(
        TelemetryConfig(interval=1.0, sample_energy=True),
        return_telemetry=True,
    )
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    for name in ("health.json", "slo.jsonl", "health.prom", "live.jsonl"):
        assert not (run_dir / name).exists(), name
    data = load_run(run_dir)
    assert "health" not in data["summary"]["config"]
    assert data["health"] == {}


def _export_sharded(shards, run_dir):
    try:
        outcome = run_sharded_replay(
            golden_plan(),
            num_workers=3,
            shards=shards,
            registrations=FUNCTIONS,
            config=GOLDEN_CONFIG,
            status_interval=2.0,
            horizon=120.0,
            telemetry_config=HEALTH_TC,
        )
    except ShardingUnavailable as exc:  # pragma: no cover - sandbox dependent
        pytest.skip(f"shard processes unavailable here: {exc}")
    outcome.telemetry.export(run_dir)
    outcome.telemetry.cleanup()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_health_artifacts_byte_identical(health_run, tmp_path, shards):
    serial_dir, _ = health_run
    shard_dir = tmp_path / f"shard{shards}"
    _export_sharded(shards, shard_dir)
    for name in ("health.json", "slo.jsonl", "health.prom"):
        assert (shard_dir / name).read_bytes() == \
            (serial_dir / name).read_bytes(), name


def test_live_heartbeats_from_serial_run(health_run):
    run_dir, _ = health_run
    beats = read_live(run_dir / "live.jsonl")
    # One beat per heartbeat interval (= window, 10s) over the 120s run,
    # plus the terminal beat.
    assert len(beats) >= 3
    assert all(b["engine"] == "serial" for b in beats)
    totals = [b["total"] for b in beats]
    assert totals == sorted(totals)  # monotone rolling counts


def test_enable_live_requires_health(tmp_path):
    from repro.sim.core import Environment

    telemetry = Telemetry(Environment(), TelemetryConfig())
    with pytest.raises(RuntimeError, match="health"):
        telemetry.enable_live(tmp_path / "live.jsonl")


# --------------------------------------------------------- reports + CLI
def test_health_report_renders_tables(health_run):
    run_dir, _ = health_run
    text = health_report(run_dir)
    assert "health report for" in text
    assert "per-function SLO compliance:" in text
    assert "alpha.1" in text
    assert "worst_burn" in text
    assert "SLO:" in text


def test_health_report_missing_artifacts(tmp_path):
    text = health_report(tmp_path)
    assert "no health artifacts" in text
    assert "--health" in text


def test_health_section_in_inspect(health_run):
    run_dir, _ = health_run
    from repro.telemetry import inspect_report

    text = inspect_report(run_dir)
    assert "health:" in text
    assert "violating windows" in text
    assert f"repro health {run_dir}" in text


def test_health_section_fallback_when_off(tmp_path):
    _, telemetry = run_scenario(
        TelemetryConfig(interval=1.0), return_telemetry=True)
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    assert any("not enabled" in line for line in health_section(run_dir))
    from repro.telemetry import inspect_report

    text = inspect_report(run_dir)
    assert "health: (not enabled for this run)" in text


def test_cli_health_and_watch_commands(health_run, capsys):
    run_dir, _ = health_run
    assert main(["health", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "per-function SLO compliance:" in out
    assert main(["watch", str(run_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "run complete" in out


def test_cli_cluster_study_health_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["cluster-study", "--health"])
    assert "--health requires --telemetry" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["--telemetry", "/tmp/x", "cluster-study", "--health",
              "--compare-lb"])
    assert "not the" in capsys.readouterr().err


# -------------------------------------------------------------- azure-scale
def test_azure_scale_health_columns(tmp_path):
    from repro.experiments.azure_scale import run_azure_scale

    out = tmp_path / "bench.json"
    report = run_azure_scale(
        num_functions=20, minutes=4, num_workers=3, shard_counts=(1,),
        out_path=out, health=True,
    )
    (row,) = report.rows
    assert row.health is not None
    assert set(row.health) == {
        "slo_violations", "slo_rows", "alerts", "worst_burn_rate",
        "worst_burn_function",
    }
    record = json.loads(out.read_text())
    assert record["rows"][0]["health"] == row.health


def test_azure_scale_health_off_omits_column(tmp_path):
    from repro.experiments.azure_scale import run_azure_scale

    out = tmp_path / "bench.json"
    report = run_azure_scale(
        num_functions=20, minutes=4, num_workers=3, shard_counts=(1,),
        out_path=out,
    )
    assert report.rows[0].health is None
    assert "health" not in json.loads(out.read_text())["rows"][0]
