"""Unit tests for the memory-bounded keep-alive cache."""

import pytest

from repro.keepalive.cache import KeepAliveCache
from repro.keepalive.policies import (
    GreedyDualPolicy,
    LRUPolicy,
    TTLPolicy,
)


def lru_cache(capacity=1000.0):
    return KeepAliveCache(LRUPolicy(), capacity_mb=capacity)


def test_insert_and_hit():
    c = lru_cache()
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    hit = c.lookup("f", now=1.0)
    assert hit is not None
    assert c.stats.hits == 1
    assert c.used_mb == 100.0


def test_miss_on_unknown_function():
    c = lru_cache()
    assert c.lookup("ghost", now=0.0) is None
    assert c.stats.misses == 1


def test_busy_container_not_reusable():
    c = lru_cache()
    e = c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    c.finish(e, busy_until=5.0)
    assert c.lookup("f", now=2.0) is None  # still running
    assert c.lookup("f", now=5.0) is not None


def test_eviction_frees_memory_lru_order():
    c = lru_cache(capacity=250.0)
    c.insert("a", 100.0, 1.0, 0.1, now=0.0)
    c.insert("b", 100.0, 1.0, 0.1, now=1.0)
    # Touch a so b is the LRU victim.
    c.lookup("a", now=2.0)
    c.insert("c", 100.0, 1.0, 0.1, now=3.0)
    assert c.containers_of("b") == []
    assert len(c.containers_of("a")) == 1
    assert c.stats.evictions == 1
    c.check_invariants(now=3.0)


def test_busy_containers_never_evicted():
    c = lru_cache(capacity=200.0)
    e = c.insert("a", 150.0, 1.0, 0.1, now=0.0)
    c.finish(e, busy_until=100.0)
    # Needs eviction of a, but a is busy -> rejected.
    assert c.insert("b", 100.0, 1.0, 0.1, now=1.0) is None
    assert c.stats.rejected == 1
    assert len(c.containers_of("a")) == 1


def test_oversized_insert_rejected():
    c = lru_cache(capacity=100.0)
    assert c.insert("big", 200.0, 1.0, 0.1, now=0.0) is None
    assert c.stats.rejected == 1


def test_ttl_lazy_expiry_on_lookup():
    c = KeepAliveCache(TTLPolicy(ttl=600.0), capacity_mb=1000.0)
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    assert c.lookup("f", now=601.0) is None  # expired -> miss
    assert c.stats.expirations == 1
    assert c.used_mb == 0.0


def test_ttl_refreshes_on_access():
    c = KeepAliveCache(TTLPolicy(ttl=600.0), capacity_mb=1000.0)
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    hit = c.lookup("f", now=500.0)
    assert hit is not None
    c.finish(hit, busy_until=500.1)
    assert c.lookup("f", now=1000.0) is not None  # 500 s idle < TTL again


def test_expire_sweep():
    c = KeepAliveCache(TTLPolicy(ttl=10.0), capacity_mb=1000.0)
    c.insert("a", 100.0, 1.0, 0.1, now=0.0)
    c.insert("b", 100.0, 1.0, 0.1, now=5.0)
    n = c.expire(now=12.0)
    assert n == 1  # only a has been idle > 10 s
    assert c.containers_of("a") == []
    assert len(c.containers_of("b")) == 1


def test_gd_eviction_prefers_low_value():
    c = KeepAliveCache(GreedyDualPolicy(), capacity_mb=300.0)
    c.insert("cheap_big", 200.0, init_cost=0.5, warm_time=0.1, now=0.0)
    c.insert("dear_small", 50.0, init_cost=5.0, warm_time=0.1, now=1.0)
    # Need 150 more: GD should evict cheap_big (low cost/size).
    c.insert("new", 150.0, init_cost=1.0, warm_time=0.1, now=2.0)
    assert c.containers_of("cheap_big") == []
    assert len(c.containers_of("dear_small")) == 1


def test_multiple_containers_per_function():
    c = lru_cache()
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    assert len(c.containers_of("f")) == 2
    assert len(c) == 2
    a = c.lookup("f", now=1.0)
    b = c.lookup("f", now=1.0)
    assert a is not None and b is not None and a is not b


def test_set_capacity_shrink_evicts_idle():
    c = lru_cache(capacity=1000.0)
    for i in range(5):
        c.insert(f"f{i}", 100.0, 1.0, 0.1, now=float(i))
    c.set_capacity(250.0, now=10.0)
    assert c.used_mb <= 250.0
    c.check_invariants(now=10.0)


def test_set_capacity_grow():
    c = lru_cache(capacity=100.0)
    c.set_capacity(500.0, now=0.0)
    assert c.insert("f", 400.0, 1.0, 0.1, now=0.0) is not None


def test_set_capacity_validation():
    c = lru_cache()
    with pytest.raises(ValueError):
        c.set_capacity(0.0, now=0.0)
    with pytest.raises(ValueError):
        KeepAliveCache(LRUPolicy(), capacity_mb=-1.0)


def test_evict_one_skips_busy():
    c = lru_cache(capacity=1000.0)
    busy = c.insert("a", 100.0, 1.0, 0.1, now=0.0)
    c.finish(busy, busy_until=100.0)
    c.insert("b", 100.0, 1.0, 0.1, now=1.0)
    victim = c.evict_one(now=2.0)
    assert victim is not None and victim.fqdn == "b"
    assert c.evict_one(now=2.0) is None  # only the busy one remains


def test_hit_ratio_stats():
    c = lru_cache()
    c.insert("f", 100.0, 1.0, 0.1, now=0.0)
    c.lookup("f", now=1.0)
    c.lookup("ghost", now=1.0)
    assert c.stats.accesses == 2
    assert c.stats.hit_ratio == pytest.approx(0.5)
    assert c.stats.miss_ratio == pytest.approx(0.5)


def test_free_mb_accounting():
    c = lru_cache(capacity=500.0)
    c.insert("f", 200.0, 1.0, 0.1, now=0.0)
    assert c.free_mb == pytest.approx(300.0)
