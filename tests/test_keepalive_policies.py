"""Unit tests for keep-alive policies (TTL/LRU/FREQ/GD/LND/HIST)."""

import math

import pytest

from repro.keepalive.entries import WarmContainer
from repro.keepalive.policies import (
    POLICY_NAMES,
    GreedyDualPolicy,
    HistogramPolicy,
    LandlordPolicy,
    LFUPolicy,
    LRUPolicy,
    TTLPolicy,
    make_policy,
)


def make_entry(fqdn="f", memory=100.0, init=1.0, now=0.0):
    return WarmContainer(fqdn=fqdn, memory_mb=memory, init_cost=init,
                         warm_time=0.1, now=now)


# ----------------------------------------------------------------- entries
def test_entry_validation():
    with pytest.raises(ValueError):
        make_entry(memory=0.0)
    with pytest.raises(ValueError):
        make_entry(init=-1.0)


def test_entry_touch_updates_freq_and_recency():
    e = make_entry(now=0.0)
    e.touch(5.0)
    assert e.freq == 2
    assert e.last_used == 5.0


def test_entry_idle_by_busy_until():
    e = make_entry(now=0.0)
    e.busy_until = 10.0
    assert not e.is_idle(5.0)
    assert e.is_idle(10.0)


# --------------------------------------------------------------------- LRU
def test_lru_priority_is_recency():
    p = LRUPolicy()
    a, b = make_entry(now=1.0), make_entry(now=2.0)
    assert p.priority(a, 3.0) < p.priority(b, 3.0)
    assert p.expiry_time(a) == float("inf")  # work-conserving


# --------------------------------------------------------------------- TTL
def test_ttl_expiry_and_lru_order():
    p = TTLPolicy(ttl=600.0)
    e = make_entry(now=100.0)
    assert p.expiry_time(e) == pytest.approx(700.0)
    assert p.priority(e, 200.0) == e.last_used


def test_ttl_validation():
    with pytest.raises(ValueError):
        TTLPolicy(ttl=0.0)


# --------------------------------------------------------------------- LFU
def test_lfu_priority_is_frequency():
    p = LFUPolicy()
    a, b = make_entry(), make_entry()
    b.touch(1.0)
    assert p.priority(a, 2.0) < p.priority(b, 2.0)


# ---------------------------------------------------------------------- GD
def test_gd_priority_formula():
    p = GreedyDualPolicy()
    e = make_entry(memory=200.0, init=4.0)
    # clock 0, freq 1: priority = 1 * 4 / 200
    assert p.priority(e, 0.0) == pytest.approx(0.02)


def test_gd_clock_inflation_on_eviction():
    p = GreedyDualPolicy()
    victim = make_entry(memory=100.0, init=5.0)
    victim.priority = 0.05
    p.on_evict(victim)
    assert p.clock == pytest.approx(0.05)
    fresh = make_entry(memory=100.0, init=1.0)
    # New entries start above the clock.
    assert p.priority(fresh, 0.0) == pytest.approx(0.05 + 0.01)


def test_gd_clock_never_decreases():
    p = GreedyDualPolicy()
    hi = make_entry()
    hi.priority = 1.0
    lo = make_entry()
    lo.priority = 0.5
    p.on_evict(hi)
    p.on_evict(lo)
    assert p.clock == 1.0


def test_gd_favours_high_cost_small_entries():
    p = GreedyDualPolicy()
    cheap_big = make_entry(memory=512.0, init=1.0)
    dear_small = make_entry(memory=64.0, init=2.0)
    assert p.priority(dear_small, 0.0) > p.priority(cheap_big, 0.0)


def test_gd_reset_clears_clock():
    p = GreedyDualPolicy()
    e = make_entry()
    e.priority = 3.0
    p.on_evict(e)
    p.reset()
    assert p.clock == 0.0


# ---------------------------------------------------------------- Landlord
def test_landlord_ignores_frequency():
    p = LandlordPolicy()
    e = make_entry(memory=100.0, init=2.0)
    before = p.priority(e, 0.0)
    e.touch(1.0)  # freq 2
    assert p.priority(e, 1.0) == pytest.approx(before)


def test_landlord_clock_inflation():
    p = LandlordPolicy()
    victim = make_entry()
    victim.priority = 0.7
    p.on_evict(victim)
    assert p.clock == pytest.approx(0.7)


# -------------------------------------------------------------------- HIST
def test_hist_unknown_function_gets_generic_ttl():
    p = HistogramPolicy(generic_ttl=7200.0)
    e = make_entry(now=0.0)
    assert p.expiry_time(e) == pytest.approx(7200.0)


def test_hist_records_iats_in_minute_buckets():
    p = HistogramPolicy(min_samples=2)
    for t in [0.0, 120.0, 240.0, 360.0, 480.0]:  # IAT exactly 2 min
        p.record_arrival("f", t)
    hist = p._history["f"]
    assert hist.stats.n == 4
    assert hist.buckets[2] == 4
    assert hist.predictable  # CoV = 0


def test_hist_predictable_function_preloads():
    p = HistogramPolicy(min_samples=2)
    for t in [0.0, 120.0, 240.0, 360.0]:
        p.record_arrival("f", t)
    reqs = p.preloads_after("f", 360.0)
    assert len(reqs) == 1
    req = reqs[0]
    # Preload before the lower edge of the IAT bucket (2 min = 120 s).
    assert 360.0 < req.when <= 360.0 + 120.0
    # Keep through the upper edge of the tail bucket (3 min = 180 s) + margin.
    assert req.keep_until >= 360.0 + 180.0


def test_hist_predictable_expiry_releases_immediately():
    p = HistogramPolicy(min_samples=2)
    for t in [0.0, 120.0, 240.0, 360.0]:
        p.record_arrival("f", t)
    e = make_entry(fqdn="f", now=360.0)
    assert p.expiry_time(e) == pytest.approx(360.0)


def test_hist_subminute_iat_keeps_warm_no_preload():
    p = HistogramPolicy(min_samples=2)
    for t in [0.0, 10.0, 20.0, 30.0, 40.0]:  # IAT 10 s -> bucket 0
        p.record_arrival("f", t)
    assert p.preloads_after("f", 40.0) == []
    e = make_entry(fqdn="f", now=40.0)
    # Keep through the tail (upper edge of bucket 0 = 60 s) + margin.
    assert p.expiry_time(e) == pytest.approx(40.0 + 60.0 * 1.15)


def test_hist_unpredictable_falls_back_to_generic():
    p = HistogramPolicy(min_samples=2)
    # Nine 1-second IATs followed by one ~4-hour-window-edge gap: the
    # Welford CoV lands around 3, well past the 2.0 predictability gate.
    stamps = [float(i) for i in range(10)] + [14000.0]
    for t in stamps:
        p.record_arrival("f", t)
    hist = p._history["f"]
    assert not hist.predictable
    assert hist.stats.cov > 2.0
    e = make_entry(fqdn="f", now=14000.0)
    assert p.expiry_time(e) == pytest.approx(14000.0 + p.generic_ttl)


def test_hist_out_of_window_iats_not_recorded():
    p = HistogramPolicy(window_hours=4.0, min_samples=1)
    p.record_arrival("f", 0.0)
    p.record_arrival("f", 5 * 3600.0)  # 5 h > 4 h window
    assert p._history["f"].stats.n == 0


def test_hist_percentile_edges():
    p = HistogramPolicy(min_samples=2)
    for t in [0.0, 90.0, 180.0]:  # IAT 90 s -> bucket 1
        p.record_arrival("f", t)
    hist = p._history["f"]
    assert hist.percentile_iat(50.0, edge="lower") == pytest.approx(60.0)
    assert hist.percentile_iat(50.0, edge="upper") == pytest.approx(120.0)
    with pytest.raises(ValueError):
        hist.percentile_iat(50.0, edge="middle")


def test_hist_validation():
    with pytest.raises(ValueError):
        HistogramPolicy(generic_ttl=0.0)
    with pytest.raises(ValueError):
        HistogramPolicy(margin=1.0)
    with pytest.raises(ValueError):
        HistogramPolicy(head_percentile=50.0, tail_percentile=10.0)


def test_hist_reset():
    p = HistogramPolicy()
    p.record_arrival("f", 0.0)
    p.reset()
    assert p._history == {}


# ------------------------------------------------------------------ factory
def test_make_policy_all_names():
    for name in POLICY_NAMES:
        policy = make_policy(name)
        assert policy.name == name


def test_make_policy_aliases_and_kwargs():
    assert isinstance(make_policy("gdsf"), GreedyDualPolicy)
    assert isinstance(make_policy("landlord"), LandlordPolicy)
    assert isinstance(make_policy("lfu"), LFUPolicy)
    assert make_policy("ttl", ttl=60.0).ttl == 60.0


def test_make_policy_unknown():
    with pytest.raises(ValueError):
        make_policy("mystery")
