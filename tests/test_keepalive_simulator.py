"""Unit tests for the trace-driven keep-alive simulator."""

import numpy as np
import pytest

from repro.keepalive.policies import make_policy
from repro.keepalive.simulator import (
    KeepAliveSimulator,
    simulate,
    sweep_cache_sizes,
)
from repro.trace.model import Trace, TraceFunction


def make_trace(timestamps, fidx, functions, duration=None):
    return Trace(
        functions=functions,
        timestamps=np.asarray(timestamps, dtype=float),
        function_idx=np.asarray(fidx, dtype=np.int64),
        duration=duration,
    )


F = TraceFunction(name="f", memory_mb=100.0, warm_time=1.0, cold_time=3.0)
G = TraceFunction(name="g", memory_mb=100.0, warm_time=1.0, cold_time=2.0)


def test_first_invocation_always_cold():
    trace = make_trace([0.0], [0], [F])
    r = simulate(trace, "LRU", 1024.0)
    assert r.cold_starts == 1
    assert r.warm_starts == 0
    assert r.cold_ratio == 1.0


def test_reuse_is_warm():
    trace = make_trace([0.0, 10.0, 20.0], [0, 0, 0], [F])
    r = simulate(trace, "LRU", 1024.0)
    assert r.cold_starts == 1
    assert r.warm_starts == 2


def test_concurrent_invocations_both_cold():
    # Second arrival lands while the first container is busy (cold run
    # takes 3 s): the spawn-start effect.
    trace = make_trace([0.0, 1.0], [0, 0], [F])
    r = simulate(trace, "LRU", 1024.0)
    assert r.cold_starts == 2


def test_exec_increase_accounting():
    trace = make_trace([0.0, 10.0], [0, 0], [F])
    r = simulate(trace, "LRU", 1024.0)
    # One cold (init 2 s) over total warm exec 2 s -> 100%.
    assert r.exec_increase_pct == pytest.approx(100.0)
    assert r.total_cold_overhead == pytest.approx(2.0)
    assert r.total_warm_exec == pytest.approx(2.0)


def test_ttl_expires_between_invocations():
    trace = make_trace([0.0, 700.0], [0, 0], [F], duration=1000.0)
    ttl = simulate(trace, "TTL", 1024.0)
    assert ttl.cold_starts == 2  # 700 s idle > 600 s TTL
    lru = simulate(trace, "LRU", 1024.0)
    assert lru.cold_starts == 1  # work-conserving: plenty of memory


def test_memory_pressure_forces_eviction():
    # Cache fits one container; alternating functions always evict.
    trace = make_trace([0.0, 10.0, 20.0, 30.0], [0, 1, 0, 1], [F, G])
    r = simulate(trace, "LRU", 150.0)
    assert r.cold_starts == 4
    assert r.evictions >= 2


def test_uncacheable_when_all_busy():
    # Three overlapping invocations, room for only one container.
    trace = make_trace([0.0, 0.5, 1.0], [0, 0, 0], [F])
    r = simulate(trace, "LRU", 150.0)
    assert r.cold_starts == 3
    assert r.uncacheable >= 1


def test_per_function_cold_breakdown():
    trace = make_trace([0.0, 10.0, 20.0], [0, 1, 0], [F, G])
    r = simulate(trace, "LRU", 1024.0)
    assert r.per_function_cold == {"f": 1, "g": 1}


def test_hist_policy_preloads_counted():
    # Strictly periodic function with a 2-minute gap: HIST should learn
    # the pattern and prewarm.
    stamps = [i * 120.0 for i in range(30)]
    trace = make_trace(stamps, [0] * 30, [F], duration=30 * 120.0)
    r = simulate(trace, "HIST", 1024.0)
    assert r.preloads > 0
    # After warmup, arrivals hit prewarmed containers.
    assert r.warm_starts > 15


def test_on_tick_called_and_can_resize():
    stamps = [float(i) for i in range(100)]
    trace = make_trace(stamps, [0] * 100, [F], duration=100.0)
    ticks = []

    def on_tick(now, sim):
        ticks.append(now)
        sim.cache.set_capacity(500.0, now)

    sim = KeepAliveSimulator(
        make_policy("LRU"), 1024.0, tick_interval=10.0, on_tick=on_tick
    )
    sim.run(trace)
    assert ticks and ticks[0] == 10.0
    assert sim.cache.capacity_mb == 500.0


def test_tick_interval_validation():
    with pytest.raises(ValueError):
        KeepAliveSimulator(make_policy("LRU"), 1024.0, tick_interval=0.0)


def test_sweep_cache_sizes_shapes():
    trace = make_trace([0.0, 10.0, 20.0], [0, 0, 0], [F])
    results = sweep_cache_sizes(trace, ["LRU", "GD"], [0.5, 1.0])
    assert len(results) == 4
    assert {r.policy for r in results} == {"LRU", "GD"}
    assert {r.cache_size_mb for r in results} == {512.0, 1024.0}


def test_result_row_fields():
    trace = make_trace([0.0], [0], [F])
    row = simulate(trace, "LRU", 1024.0).row()
    assert set(row) == {"policy", "cache_gb", "invocations", "cold_ratio",
                        "exec_increase_pct"}


def test_empty_trace():
    trace = make_trace([], [], [F], duration=10.0)
    r = simulate(trace, "GD", 1024.0)
    assert r.invocations == 0
    assert np.isnan(r.cold_ratio)


def test_result_frozen_with_identity_equality():
    """Regression: KeepAliveResult is frozen but carries a mutable dict.

    With ``eq=True`` the synthesized equality/hash would either choke on
    the dict or silently exclude it while claiming value semantics; the
    dataclass therefore opts out (``eq=False``) and keeps identity
    semantics, which stay consistent even when the dict mutates.
    """
    import dataclasses

    trace = make_trace([0.0, 10.0], [0, 0], [F])
    a = simulate(trace, "LRU", 1024.0)
    b = simulate(trace, "LRU", 1024.0)
    # Same replay, bit-identical fields...
    assert dataclasses.asdict(a) == dataclasses.asdict(b)
    # ...but equality and hashing are by identity, so the mutable
    # per_function_cold field can never make them inconsistent.
    assert a != b
    assert a == a
    h = hash(a)
    a.per_function_cold["mutated"] = 99
    assert hash(a) == h
    assert a in {a} and b not in {a}
    # Still frozen: field assignment is rejected.
    with pytest.raises(dataclasses.FrozenInstanceError):
        a.invocations = 0
