"""Layering contract: imports only point down the stack.

The repo's architecture is a strict layering (ROADMAP / DESIGN):

    errors, sim                                   (0: foundation)
      ← metrics, cache, trace, parallel,
        containers, queueing, keepalive           (1: mechanisms)
      ← core, workloads, loadgen                  (2: control plane)
      ← dispatch, loadbalancer, baselines,
        provisioning                              (3: cluster layer)
      ← experiments, telemetry, cluster_shard,
        cli, profile                              (4: harness)

A module may import (at module level) only from its own layer or below.
This guard walks every source file's AST and fails on upward imports, so
god-object regressions — the exact failure mode the lifecycle refactor
unwinds — break CI instead of accreting silently.  In-function (deferred)
imports are exempt: they are the documented escape hatch for optional,
late-bound wiring and cannot create import cycles.

Documented exemptions (shared *model* types, not behaviour):

* ``containers`` (layer 1) imports ``core.function``, and ``queueing``
  imports ``core.function`` + ``core.characteristics`` — the
  registration/invocation dataclasses and the characteristics map are the
  vocabulary the mechanism layers are written in.  Only those core
  modules are allowed; any other ``core.*`` import from layer 1 still
  fails, and :func:`test_exemptions_are_minimal` deletes stale entries.
"""

import ast
from pathlib import Path

SRC = Path(__file__).parent.parent / "src" / "repro"

LAYERS = {
    # 0: foundation
    "errors": 0,
    "sim": 0,
    # 1: mechanisms
    "metrics": 1,
    "cache": 1,
    "trace": 1,
    "parallel": 1,
    "containers": 1,
    "queueing": 1,
    "keepalive": 1,
    # 2: the worker-centric control plane
    "core": 2,
    "workloads": 2,
    "loadgen": 2,
    # 3: cluster layer
    "dispatch": 3,
    "loadbalancer": 3,
    "baselines": 3,
    "provisioning": 3,
    # 4: harness / observability / entry points
    "experiments": 4,
    "telemetry": 4,
    "tracing": 4,
    "health": 4,
    "cluster_shard": 4,
    "cli": 4,
    "profile": 4,
    "__init__": 4,
    "__main__": 4,
}

# (importing package, imported dotted module) pairs allowed despite
# pointing up the stack: shared model types only.
EXEMPT = {
    ("containers", "core.function"),
    ("queueing", "core.function"),
    ("queueing", "core.characteristics"),
}


def top_package(path: Path) -> str:
    rel = path.relative_to(SRC)
    return rel.parts[0].removesuffix(".py")


def resolve_relative(path: Path, node: ast.ImportFrom) -> str:
    """Resolve a relative ``from .. import x`` to a repro-dotted module."""
    rel = path.relative_to(SRC)
    parts = list(rel.parts[:-1])  # package dirs containing this module
    up = node.level - 1
    base = parts[: len(parts) - up] if up else parts
    mod = node.module or ""
    return ".".join([*base, mod]) if mod else ".".join(base)


def module_level_imports(tree: ast.Module):
    """Yield (node, dotted) for imports outside function bodies."""
    todo = [(tree, False)]
    while todo:
        node, in_func = todo.pop()
        for child in ast.iter_child_nodes(node):
            child_in_func = in_func or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if not child_in_func and isinstance(child, ast.Import):
                for alias in child.names:
                    yield child, alias.name
            elif not child_in_func and isinstance(child, ast.ImportFrom):
                yield child, None  # resolved by the caller
            todo.append((child, child_in_func))


def collect_violations():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        importer = top_package(path)
        importer_layer = LAYERS[importer]
        tree = ast.parse(path.read_text(), filename=str(path))
        for node, dotted in module_level_imports(tree):
            if isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    target = resolve_relative(path, node)
                elif node.module and node.module.startswith("repro"):
                    target = node.module.removeprefix("repro").lstrip(".")
                else:
                    continue
            else:
                if not dotted.startswith("repro"):
                    continue
                target = dotted.removeprefix("repro").lstrip(".")
            if not target:
                continue  # "from . import x" inside the same package
            imported = target.split(".")[0]
            if imported not in LAYERS:
                continue
            if LAYERS[imported] > importer_layer and importer != imported:
                if (importer, target) in EXEMPT:
                    continue
                violations.append(
                    f"{path.relative_to(SRC)}:{node.lineno}: "
                    f"layer-{importer_layer} package {importer!r} imports "
                    f"layer-{LAYERS[imported]} module repro.{target}"
                )
    return violations


def test_every_package_has_a_layer():
    found = {
        top_package(p)
        for p in SRC.rglob("*.py")
    }
    unassigned = found - set(LAYERS)
    assert not unassigned, (
        f"new top-level packages need a layer assignment: {sorted(unassigned)}"
    )


def test_imports_respect_layering():
    violations = collect_violations()
    assert not violations, "\n".join(["layering violations:"] + violations)


def all_imports(tree: ast.Module):
    """Yield every import's dotted target, *including* in-function ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            yield node, None


def test_loadbalancer_never_imports_cluster_shard():
    """The LB/dispatch layers must stay runnable without the shard engine.

    Stricter than the generic guard: even deferred (in-function) imports
    are forbidden here — the shard engine imports the cluster, so any
    back-edge, however late-bound, would couple the placement layer to
    the multiprocess harness.
    """
    offenders = []
    for package in ("loadbalancer", "dispatch"):
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node, dotted in all_imports(tree):
                if isinstance(node, ast.ImportFrom):
                    if node.level > 0:
                        target = resolve_relative(path, node)
                    elif node.module and node.module.startswith("repro"):
                        target = node.module.removeprefix("repro").lstrip(".")
                    else:
                        continue
                else:
                    if not dotted.startswith("repro"):
                        continue
                    target = dotted.removeprefix("repro").lstrip(".")
                if target.split(".")[0] == "cluster_shard":
                    offenders.append(f"{path.relative_to(SRC)}:{node.lineno}")
    assert not offenders, (
        f"loadbalancer/dispatch must not import cluster_shard: {offenders}"
    )


def test_exemptions_are_minimal():
    """The exemption list must stay exactly the shared-model imports that
    actually exist — stale entries get deleted, new ones argued for."""
    used = set()
    for path in sorted(SRC.rglob("*.py")):
        importer = top_package(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        for node, _ in module_level_imports(tree):
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                target = resolve_relative(path, node)
                if (importer, target) in EXEMPT:
                    used.add((importer, target))
    assert used == EXEMPT, f"unused exemptions: {sorted(EXEMPT - used)}"
