"""Unit-level runs of the LB ablation experiments (tiny durations)."""

from repro.experiments.lb_ablation import run_lb_ablation, run_lb_policy_comparison


def test_bound_factor_ablation_rows():
    rows = run_lb_ablation(bound_factors=(1.0, 2.0), num_workers=2,
                           duration=60.0)
    assert [r["bound_factor"] for r in rows] == [1.0, 2.0]
    for row in rows:
        assert row["completed"] > 0
        assert 0.0 <= row["warm_ratio"] <= 1.0
        assert row["forwards"] >= 0


def test_policy_comparison_rows():
    rows = run_lb_policy_comparison(policies=("ch_bl", "round_robin"),
                                    num_workers=2, duration=60.0)
    assert {r["policy"] for r in rows} == {"ch_bl", "round_robin"}
    for row in rows:
        assert row["completed"] > 0
        assert row["e2e_p99_ms"] >= row["e2e_p50_ms"]
