"""Tests for alternative LB policies and the status board."""

import pytest

from repro import FunctionRegistration, WorkerConfig
from repro.loadbalancer import (
    Cluster,
    LeastLoadedBalancer,
    RoundRobinBalancer,
    StatusBoard,
    make_balancer,
)
from repro.sim import Environment


# ---------------------------------------------------------------- policies
def test_round_robin_rotates():
    rr = RoundRobinBalancer()
    for w in ("a", "b", "c"):
        rr.add_worker(w)
    picks = [rr.pick("any") for _ in range(6)]
    assert picks == ["a", "b", "c", "a", "b", "c"]


def test_round_robin_validation():
    rr = RoundRobinBalancer()
    with pytest.raises(RuntimeError):
        rr.pick("x")
    rr.add_worker("a")
    with pytest.raises(ValueError):
        rr.add_worker("a")
    rr.remove_worker("a")
    with pytest.raises(RuntimeError):
        rr.pick("x")


def test_least_loaded_tracks_load():
    loads = {"a": 5.0, "b": 1.0}
    ll = LeastLoadedBalancer(load_fn=loads.__getitem__)
    ll.add_worker("a")
    ll.add_worker("b")
    assert ll.pick("f") == "b"
    loads["b"] = 10.0
    assert ll.pick("f") == "a"


def test_make_balancer_factory():
    assert make_balancer("round_robin", lambda w: 0.0).name == "round_robin"
    assert make_balancer("least_loaded", lambda w: 0.0).name == "least_loaded"
    assert make_balancer("CHBL", lambda w: 0.0).name == "ch_bl"
    with pytest.raises(ValueError):
        make_balancer("random", lambda w: 0.0)


# ------------------------------------------------------------- status board
def test_status_board_live_mode():
    loads = {"a": 1.0}
    board = StatusBoard(clock=lambda: 0.0, live_load_fn=loads.__getitem__)
    assert board.load("a") == 1.0
    loads["a"] = 7.0
    assert board.load("a") == 7.0  # live: changes visible immediately


def test_status_board_staleness():
    clock = {"t": 0.0}
    loads = {"a": 1.0}
    board = StatusBoard(clock=lambda: clock["t"],
                        live_load_fn=loads.__getitem__, interval=10.0)
    assert board.load("a") == 1.0
    loads["a"] = 99.0
    clock["t"] = 5.0
    assert board.load("a") == 1.0  # still the old snapshot
    clock["t"] = 10.0
    assert board.load("a") == 99.0  # refreshed
    assert board.refreshes == 2


def test_status_board_validation():
    with pytest.raises(ValueError):
        StatusBoard(clock=lambda: 0.0, live_load_fn=lambda w: 0.0, interval=0.0)


# ------------------------------------------------------------------ cluster
def _cfg():
    return WorkerConfig(backend="null", cores=4, memory_mb=4096.0)


def test_cluster_round_robin_spreads_function():
    env = Environment()
    cl = Cluster(env, num_workers=3, config=_cfg(), lb_policy="round_robin")
    cl.start()
    cl.register_sync(FunctionRegistration(name="f", warm_time=0.05,
                                          cold_time=0.3))
    for _ in range(6):
        env.run_process(cl.invoke("f.1"))
    used = {w.name for w in cl.workers.values() if w.metrics.records}
    assert len(used) == 3  # locality destroyed
    # And therefore more cold starts than CH-BL's single-worker locality.
    colds = sum(1 for r in cl.records() if r.cold)
    assert colds == 3


def test_cluster_chbl_beats_round_robin_on_warm_ratio():
    def run(policy):
        env = Environment()
        cl = Cluster(env, num_workers=4, config=_cfg(), lb_policy=policy)
        cl.start()
        for i in range(6):
            cl.register_sync(
                FunctionRegistration(name=f"f{i}", warm_time=0.05, cold_time=0.4)
            )
        for _ in range(8):
            for i in range(6):
                env.run_process(cl.invoke(f"f{i}.1"))
        records = cl.records()
        return sum(1 for r in records if not r.cold) / len(records)

    assert run("ch_bl") > run("round_robin")


def test_cluster_with_stale_status_still_works():
    env = Environment()
    cl = Cluster(env, num_workers=2, config=_cfg(), status_interval=5.0)
    cl.start()
    cl.register_sync(FunctionRegistration(name="f", warm_time=0.05,
                                          cold_time=0.3))
    for _ in range(4):
        env.run_process(cl.invoke("f.1"))
    assert len(cl.records()) == 4
    assert cl.status_board.refreshes >= 1


def test_cluster_status_reports_policy():
    env = Environment()
    cl = Cluster(env, num_workers=2, config=_cfg(), lb_policy="least_loaded")
    assert cl.status()["policy"] == "least_loaded"
    assert cl.status()["forwards"] == 0  # not a CH-BL concept


def test_status_board_refresh_on_interval_grid():
    clock = {"t": 0.0}
    loads = {"a": 1.0}
    board = StatusBoard(clock=lambda: clock["t"],
                        live_load_fn=loads.__getitem__, interval=10.0)
    assert board.snapped_at is None  # nothing snapped before the first query
    clock["t"] = 3.0
    board.load("a")
    assert board.snapped_at == 0.0   # epoch snaps to the grid, not t=3
    clock["t"] = 27.5
    board.load("a")
    assert board.snapped_at == 20.0
    # Epochs are always multiples of the interval.
    assert board.snapped_at % board.interval == 0.0


def test_status_board_stale_between_refreshes():
    clock = {"t": 0.0}
    loads = {"a": 1.0, "b": 5.0}
    board = StatusBoard(clock=lambda: clock["t"],
                        live_load_fn=loads.__getitem__, interval=10.0)
    board.load("a")
    loads["a"] = 100.0
    for t in (1.0, 4.0, 9.999):
        clock["t"] = t
        assert board.load("a") == 1.0   # stale until the grid boundary
    assert board.refreshes == 1
    # A worker first queried mid-epoch is read lazily into the same epoch.
    assert board.load("b") == 5.0
    clock["t"] = 10.0
    assert board.load("a") == 100.0     # exactly on the interval grid
    assert board.refreshes == 2


def test_status_board_publish_hook():
    clock = {"t": 0.0}
    loads = {"a": 1.0}
    seen = []
    board = StatusBoard(clock=lambda: clock["t"],
                        live_load_fn=loads.__getitem__, interval=10.0,
                        publish=lambda w, t, v: seen.append((w, t, v)))
    board.load("a")
    board.load("a")             # cached: not re-published
    clock["t"] = 12.0
    loads["a"] = 3.0
    board.load("a")
    assert seen == [("a", 0.0, 1.0), ("a", 12.0, 3.0)]
