"""The invocation-lifecycle pipeline: stages, hooks, and contexts.

Pins the tentpole contract of the lifecycle refactor: every stage
boundary fires its registered hooks in pipeline order for warm and cold
invocations, terminal stages close the context with the right outcome,
context retention is opt-in, and the context-derived phase decomposition
is bit-identical to the span-derived one.
"""

import pytest

from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.core.lifecycle import (
    ACQUIRE,
    ADMIT,
    COLD_CREATE,
    COMPLETE,
    DISPATCH,
    DROP,
    ENQUEUE,
    EXECUTE,
    STAGES,
    TIMEOUT,
    WARM,
    InvocationContext,
    StageHooks,
)
from repro.core.worker import Worker
from repro.metrics.registry import Outcome
from repro.sim.core import Environment
from repro.telemetry.decomposition import decompose, decompose_contexts

REG = FunctionRegistration(name="f", memory_mb=128, warm_time=0.1, cold_time=0.5)


def make_worker(**overrides):
    env = Environment()
    cfg = dict(cores=2, memory_mb=1024, free_memory_buffer_mb=0.0,
               bypass_enabled=False, seed=3)
    cfg.update(overrides)
    worker = Worker(env, WorkerConfig(**cfg))
    worker.start()
    worker.register_sync(REG)
    return env, worker


def observe_all_stages(lifecycle, log):
    """Register one enter and one exit hook on every stage boundary."""
    for stage in STAGES:
        lifecycle.hooks.on_enter(
            stage, lambda s, ctx: log.append((s, "enter", ctx.inv.id))
        )
        lifecycle.hooks.on_exit(
            stage, lambda s, ctx: log.append((s, "exit", ctx.inv.id))
        )


def boundaries(log, inv_id):
    return [(stage, edge) for stage, edge, i in log if i == inv_id]


def run_cold_then_warm():
    env, worker = make_worker()
    log = []
    observe_all_stages(worker.lifecycle, log)
    results = []

    def submit(at):
        yield env.timeout(at)
        inv = yield from worker.invoke(REG.fqdn())
        results.append(inv)

    env.process(submit(0.0), name="cold")
    env.process(submit(5.0), name="warm")
    env.run(until=30.0)
    assert [inv.cold for inv in results] == [True, False]
    return log, results


def pairs(stage_list):
    """[(s, enter), (s, exit), ...] for a stage sequence."""
    out = []
    for s in stage_list:
        out.append((s, "enter"))
        out.append((s, "exit"))
    return out


# ------------------------------------------------------------- stage order
def test_hooks_observe_every_stage_boundary_cold_and_warm():
    log, (cold_inv, warm_inv) = run_cold_then_warm()
    assert boundaries(log, cold_inv.id) == pairs(
        [ADMIT, ENQUEUE, DISPATCH, ACQUIRE, COLD_CREATE, EXECUTE, COMPLETE]
    )
    assert boundaries(log, warm_inv.id) == pairs(
        [ADMIT, ENQUEUE, DISPATCH, ACQUIRE, WARM, EXECUTE, COMPLETE]
    )


def test_stage_times_stamped_when_hooks_active():
    env, worker = make_worker()
    seen = []
    worker.lifecycle.hooks.on_exit(
        COMPLETE, lambda s, ctx: seen.append(ctx)
    )

    def submit():
        yield from worker.invoke(REG.fqdn())

    env.process(submit(), name="s")
    env.run(until=30.0)
    [ctx] = seen
    for stage in (ADMIT, ENQUEUE, DISPATCH, ACQUIRE, COLD_CREATE, EXECUTE):
        enter, exit_ = ctx.stage_times[stage]
        assert enter is not None and exit_ is not None and enter <= exit_
    # stage_exit stamps before firing, so the exit hook observes its own
    # boundary time already recorded.
    enter, exit_ = ctx.stage_times[COMPLETE]
    assert enter is not None and exit_ is not None and enter <= exit_
    # No telemetry attached: interval collection stays off even though
    # hooks stamped the stage clock.
    assert ctx.intervals is None


def test_drop_stage_closes_context_with_dropped_outcome():
    env, worker = make_worker(cores=1, concurrency_limit=1, queue_max_len=1)
    outcomes = []
    worker.lifecycle.hooks.on_exit(
        DROP, lambda s, ctx: outcomes.append(ctx)
    )
    for _ in range(4):
        worker.async_invoke(REG.fqdn())
    env.run(until=30.0)
    assert outcomes, "expected overflow drops"
    for ctx in outcomes:
        assert ctx.inv.dropped and ctx.drop_reason == "queue overflow"
        assert ctx.outcome is Outcome.DROPPED
        assert ctx.stage == DROP


def test_timeout_stage_closes_context_with_timeout_outcome():
    env, worker = make_worker()
    slow = FunctionRegistration(
        name="slow", memory_mb=64, warm_time=5.0, cold_time=6.0, timeout=0.25
    )
    worker.register_sync(slow)
    seen = []
    worker.lifecycle.hooks.on_exit(TIMEOUT, lambda s, ctx: seen.append(ctx))

    def submit():
        yield from worker.invoke(slow.fqdn())

    env.process(submit(), name="s")
    env.run(until=30.0)
    [ctx] = seen
    assert ctx.inv.timed_out
    assert ctx.outcome is Outcome.TIMEOUT
    assert ctx.entry is None  # the killed container was discarded


# ------------------------------------------------------------------- hooks
def test_unknown_stage_rejected():
    hooks = StageHooks()
    with pytest.raises(ValueError):
        hooks.on_enter("bogus", lambda s, ctx: None)
    with pytest.raises(ValueError):
        hooks.on_exit("", lambda s, ctx: None)
    assert not hooks.active


def test_hooks_inactive_by_default_and_clearable():
    env, worker = make_worker()
    assert not worker.lifecycle.hooks.active
    worker.lifecycle.hooks.on_enter(ADMIT, lambda s, ctx: None)
    assert worker.lifecycle.hooks.active
    worker.lifecycle.hooks.clear()
    assert not worker.lifecycle.hooks.active


def test_multiple_hooks_fire_in_registration_order():
    env, worker = make_worker()
    order = []
    worker.lifecycle.hooks.on_enter(ADMIT, lambda s, ctx: order.append("a"))
    worker.lifecycle.hooks.on_enter(ADMIT, lambda s, ctx: order.append("b"))

    def submit():
        yield from worker.invoke(REG.fqdn())

    env.process(submit(), name="s")
    env.run(until=30.0)
    assert order == ["a", "b"]


# ---------------------------------------------------------------- contexts
def test_contexts_not_retained_by_default():
    env, worker = make_worker()

    def submit():
        yield from worker.invoke(REG.fqdn())

    env.process(submit(), name="s")
    env.run(until=30.0)
    assert worker.lifecycle.keep_contexts is False
    assert worker.lifecycle.contexts == []


def test_context_retention_and_interval_collection():
    env, worker = make_worker()
    worker.spans.keep_spans = True
    worker.lifecycle.keep_contexts = True
    results = []

    def submit(at):
        yield env.timeout(at)
        inv = yield from worker.invoke(REG.fqdn())
        results.append(inv)

    env.process(submit(0.0), name="cold")
    env.process(submit(5.0), name="warm")
    env.run(until=30.0)

    contexts = worker.lifecycle.contexts
    assert [ctx.inv.id for ctx in contexts] == [inv.id for inv in results]
    for ctx, inv in zip(contexts, results):
        assert ctx.tag == str(inv.id)
        assert ctx.outcome in (Outcome.COLD, Outcome.WARM)
        assert ctx.registration is REG
        assert ctx.invocation_id == inv.id
        assert ctx.cold == inv.cold
        names = [name for name, _start, _end in ctx.intervals]
        assert "exec" in names and "invoke" in names
    # The context intervals mirror the retained spans exactly, so the two
    # decomposition paths agree bit-for-bit.
    from_spans = decompose(worker.spans.spans())
    from_contexts = decompose_contexts(contexts)
    assert [(b.tag, b.phases, b.exec_time, b.cold, b.start, b.end)
            for b in from_spans] == \
           [(b.tag, b.phases, b.exec_time, b.cold, b.start, b.end)
            for b in from_contexts]


def test_context_slots_reject_stray_attributes():
    ctx = InvocationContext.__new__(InvocationContext)
    with pytest.raises(AttributeError):
        ctx.not_a_field = 1
