"""Tests for CH-BL and the cluster front end."""

import pytest

from repro import FunctionRegistration, WorkerConfig
from repro.loadbalancer import BoundedLoadBalancer, Cluster, ConsistentHashRing, hash_point
from repro.sim import Environment


# -------------------------------------------------------------------- ring
def test_hash_point_stable():
    assert hash_point("key") == hash_point("key")
    assert hash_point("key") != hash_point("key2")
    assert hash_point("key", salt=1) != hash_point("key", salt=2)


def test_ring_members():
    ring = ConsistentHashRing(vnodes=8)
    ring.add("a")
    ring.add("b")
    assert ring.members() == ["a", "b"]
    assert len(ring) == 2


def test_ring_duplicate_add_rejected():
    ring = ConsistentHashRing()
    ring.add("a")
    with pytest.raises(ValueError):
        ring.add("a")


def test_ring_remove():
    ring = ConsistentHashRing()
    ring.add("a")
    ring.add("b")
    ring.remove("a")
    assert ring.members() == ["b"]
    with pytest.raises(ValueError):
        ring.remove("a")


def test_ring_successors_cover_all_members():
    ring = ConsistentHashRing(vnodes=16)
    for m in ("a", "b", "c"):
        ring.add(m)
    order = ring.successors("some-function")
    assert sorted(order) == ["a", "b", "c"]
    assert len(order) == 3


def test_ring_home_node_stable_under_unrelated_removal():
    # Consistency: removing a node that is not the key's home does not
    # change the key's home.
    ring = ConsistentHashRing(vnodes=32)
    for m in ("a", "b", "c", "d"):
        ring.add(m)
    keys = [f"fn-{i}" for i in range(100)]
    homes = {k: ring.successors(k)[0] for k in keys}
    victim = "d"
    ring.remove(victim)
    for k in keys:
        if homes[k] != victim:
            assert ring.successors(k)[0] == homes[k]


def test_ring_empty_successors():
    assert ConsistentHashRing().successors("x") == []


def test_ring_vnodes_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(vnodes=0)


# -------------------------------------------------------------------- CH-BL
def test_chbl_prefers_home_node():
    loads = {"a": 0.0, "b": 0.0}
    lb = BoundedLoadBalancer(load_fn=loads.__getitem__, bound_factor=1.2)
    lb.add_worker("a")
    lb.add_worker("b")
    home = lb.pick("fn-x")
    assert lb.pick("fn-x") == home  # sticky while under bound


def test_chbl_forwards_when_overloaded():
    loads = {"a": 0.0, "b": 0.0}
    lb = BoundedLoadBalancer(load_fn=lambda m: loads[m], bound_factor=1.2)
    lb.add_worker("a")
    lb.add_worker("b")
    home = lb.pick("fn-x")
    other = "b" if home == "a" else "a"
    loads[home] = 100.0  # overload the home node
    assert lb.pick("fn-x") == other
    assert lb.forwards >= 1


def test_chbl_falls_back_to_least_loaded():
    loads = {"a": 50.0, "b": 80.0}
    lb = BoundedLoadBalancer(load_fn=lambda m: loads[m], bound_factor=1.0)
    lb.add_worker("a")
    lb.add_worker("b")
    # Everyone above the bound: least-loaded wins.
    assert lb.pick("fn-y") in ("a", "b")
    loads["a"] = 0.1
    # bound = ceil(1.0 * mean(40.05)) = 41 -> a is under it.
    assert lb.pick("fn-z") == lb.pick("fn-z")


def test_chbl_bound_minimum_one():
    lb = BoundedLoadBalancer(load_fn=lambda m: 0.0)
    lb.add_worker("a")
    assert lb.bound() >= 1.0


def test_chbl_no_workers():
    lb = BoundedLoadBalancer(load_fn=lambda m: 0.0)
    with pytest.raises(RuntimeError):
        lb.pick("fn")
    with pytest.raises(ValueError):
        BoundedLoadBalancer(load_fn=lambda m: 0.0, bound_factor=0.5)


# ------------------------------------------------------------------ cluster
def cluster_config():
    return WorkerConfig(backend="null", cores=4, memory_mb=4096.0)


def test_cluster_locality_same_function_same_worker():
    env = Environment()
    cl = Cluster(env, num_workers=3, config=cluster_config())
    cl.start()
    cl.register_sync(FunctionRegistration(name="f", warm_time=0.05, cold_time=0.3))
    for _ in range(6):
        inv = env.run_process(cl.invoke("f.1"))
    workers_used = {w.name for w in cl.workers.values() if w.metrics.records}
    assert len(workers_used) == 1  # all on the home node
    records = cl.records()
    assert sum(1 for r in records if r.cold) == 1  # locality -> warm starts


def test_cluster_spillover_under_load():
    env = Environment()
    cl = Cluster(env, num_workers=2,
                 config=cluster_config().with_overrides(cores=2),
                 bound_factor=1.0)
    cl.start()
    cl.register_sync(FunctionRegistration(name="f", warm_time=2.0, cold_time=3.0))
    events = []
    def burst():
        for _ in range(16):
            events.append(cl.async_invoke("f.1"))
            yield env.timeout(0.05)
    env.process(burst())
    env.run(until=120.0)
    used = {w.name for w in cl.workers.values() if w.metrics.records}
    assert len(used) == 2  # burst spilled to the second worker
    assert cl.balancer.forwards >= 1


def test_cluster_register_broadcasts():
    env = Environment()
    cl = Cluster(env, num_workers=3, config=cluster_config())
    cl.register_sync(FunctionRegistration(name="f"))
    for w in cl.workers.values():
        assert "f.1" in w.registrations


def test_cluster_unknown_function():
    from repro.errors import FunctionNotRegistered

    env = Environment()
    cl = Cluster(env, num_workers=1, config=cluster_config())
    with pytest.raises(FunctionNotRegistered):
        cl.async_invoke("nope.1")


def test_cluster_status_and_validation():
    env = Environment()
    cl = Cluster(env, num_workers=2, config=cluster_config())
    status = cl.status()
    assert set(status["workers"]) == set(cl.workers)
    with pytest.raises(ValueError):
        Cluster(env, num_workers=0)
