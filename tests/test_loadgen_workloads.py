"""Tests for load generation and workload catalogs."""

import numpy as np
import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.loadgen import (
    FunctionMix,
    InvocationPlan,
    build_plan,
    plan_from_trace,
    replay_plan,
    run_closed_loop,
)
from repro.sim.distributions import Constant, Exponential
from repro.trace.model import Trace, TraceFunction
from repro.workloads import (
    FUNCTIONBENCH,
    catalog_table,
    closest_bench_function,
    lookbusy_function,
    lookbusy_population,
    map_trace_to_catalog,
    registration_for,
)


def make_worker(**overrides):
    env = Environment()
    defaults = dict(backend="null", cores=4, memory_mb=4096.0)
    defaults.update(overrides)
    worker = Worker(env, WorkerConfig(**defaults))
    worker.start()
    return env, worker


# -------------------------------------------------------------- closed loop
def test_closed_loop_counts_and_warmup_filter():
    env, worker = make_worker()
    worker.register_sync(FunctionRegistration(name="f", warm_time=0.1,
                                              cold_time=0.2))
    result = run_closed_loop(env, worker, "f.1", clients=2, duration=5.0,
                             warmup=1.0)
    assert result.completed
    assert all(i.arrival >= 1.0 for i in result.invocations)
    assert result.throughput > 0


def test_closed_loop_think_time_reduces_throughput():
    env1, w1 = make_worker()
    w1.register_sync(FunctionRegistration(name="f", warm_time=0.1, cold_time=0.2))
    fast = run_closed_loop(env1, w1, "f.1", clients=1, duration=10.0)
    env2, w2 = make_worker()
    w2.register_sync(FunctionRegistration(name="f", warm_time=0.1, cold_time=0.2))
    slow = run_closed_loop(env2, w2, "f.1", clients=1, duration=10.0,
                           think_time=0.5)
    assert len(slow.completed) < len(fast.completed)


def test_closed_loop_validation():
    env, worker = make_worker()
    worker.register_sync(FunctionRegistration(name="f"))
    with pytest.raises(ValueError):
        run_closed_loop(env, worker, "f.1", clients=0, duration=1.0)
    with pytest.raises(ValueError):
        run_closed_loop(env, worker, "f.1", clients=1, duration=0.0)


# ---------------------------------------------------------------- open loop
def test_build_plan_sorted_and_bounded():
    plan = build_plan(
        [FunctionMix("a.1", Exponential(0.5)), FunctionMix("b.1", Exponential(1.0))],
        duration=20.0,
        seed=1,
    )
    assert len(plan) > 10
    assert np.all(np.diff(plan.timestamps) >= 0)
    assert plan.timestamps.max() < 20.0
    assert set(plan.fqdns) == {"a.1", "b.1"}


def test_build_plan_constant_iat_deterministic():
    plan = build_plan([FunctionMix("a.1", Constant(2.0))], duration=10.0)
    assert plan.timestamps.tolist() == [2.0, 4.0, 6.0, 8.0]


def test_build_plan_start_offset():
    plan = build_plan(
        [FunctionMix("a.1", Constant(2.0), start_offset=5.0)], duration=10.0
    )
    assert plan.timestamps.tolist() == [7.0, 9.0]


def test_build_plan_validation():
    with pytest.raises(ValueError):
        build_plan([], duration=10.0)
    with pytest.raises(ValueError):
        build_plan([FunctionMix("a.1", Constant(1.0))], duration=0.0)
    with pytest.raises(ValueError):
        FunctionMix("a.1", Constant(1.0), start_offset=-1.0)


def test_plan_from_trace_round_trip():
    functions = [TraceFunction(name="f", memory_mb=64.0, warm_time=0.1,
                               cold_time=0.2)]
    trace = Trace(functions, np.array([1.0, 2.0]), np.array([0, 0]),
                  duration=5.0)
    plan = plan_from_trace(trace)
    assert plan.fqdns == ["f.1", "f.1"]
    assert plan.timestamps.tolist() == [1.0, 2.0]


def test_replay_plan_exact_timing():
    env, worker = make_worker()
    worker.register_sync(FunctionRegistration(name="f", warm_time=0.01,
                                              cold_time=0.05))
    plan = InvocationPlan(np.array([1.0, 3.0]), ["f.1", "f.1"], duration=5.0)
    invocations = replay_plan(env, worker, plan)
    assert len(invocations) == 2
    assert invocations[0].arrival == pytest.approx(1.0)
    assert invocations[1].arrival == pytest.approx(3.0)


def test_invocation_plan_validation():
    with pytest.raises(ValueError):
        InvocationPlan(np.array([2.0, 1.0]), ["a", "b"], duration=5.0)
    with pytest.raises(ValueError):
        InvocationPlan(np.array([1.0]), ["a", "b"], duration=5.0)


# --------------------------------------------------------------- workloads
def test_catalog_matches_paper_table4():
    ml = FUNCTIONBENCH["ml_inference"]
    assert ml.memory_mb == 512.0
    assert ml.run_time == 6.5
    assert ml.init_time == 4.5
    assert ml.warm_time == pytest.approx(2.0)
    video = FUNCTIONBENCH["video_encoding"]
    assert video.run_time == 56.0


def test_catalog_table_rows():
    rows = catalog_table()
    assert len(rows) == len(FUNCTIONBENCH)
    assert all({"application", "mem_mb", "run_s", "init_s"} <= set(r) for r in rows)


def test_registration_for_maps_fields():
    r = registration_for("float_op")
    assert r.memory_mb == 128.0
    assert r.warm_time == pytest.approx(0.3)
    assert r.cold_time == pytest.approx(2.0)
    with pytest.raises(KeyError):
        registration_for("nope")


def test_registration_for_versions_distinct():
    assert registration_for("float_op", version=2).fqdn() == "float_op.2"


def test_lookbusy_function_profile():
    f = lookbusy_function("x", run_time=1.5, memory_mb=200.0, init_time=0.5)
    assert f.warm_time == 1.5
    assert f.cold_time == 2.0
    with pytest.raises(ValueError):
        lookbusy_function("x", run_time=0.0)


def test_lookbusy_population():
    pop = lookbusy_population(10, Constant(1.0), Constant(128.0),
                              init_fraction=0.5, seed=1)
    assert len(pop) == 10
    assert len({f.name for f in pop}) == 10
    for f in pop:
        assert f.cold_time == pytest.approx(1.5)


def test_closest_bench_function():
    assert closest_bench_function(60.0).key == "video_encoding"
    assert closest_bench_function(0.0).key == "pyaes"
    with pytest.raises(ValueError):
        closest_bench_function(1.0, catalog=[])


def test_map_trace_to_catalog():
    functions = [TraceFunction(name="f", memory_mb=64.0, warm_time=55.0,
                               cold_time=60.0)]
    trace = Trace(functions, np.array([0.0]), np.array([0]), duration=1.0)
    mapped = map_trace_to_catalog(trace)
    assert mapped.functions[0].memory_mb == 500.0  # video encoding profile
    assert len(mapped) == 1
    assert mapped.functions[0].name == "f"  # identity preserved
