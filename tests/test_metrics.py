"""Unit tests for the metrics substrate (stats, spans, registry, energy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    EnergyModel,
    EnergyMonitor,
    InvocationRecord,
    MetricsRegistry,
    OnlineStats,
    Outcome,
    SpanRecorder,
    bin_timeseries,
    percentile,
    summarize,
)


# ------------------------------------------------------------------- stats
def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)


def test_summarize_empty_is_nan():
    s = summarize([])
    assert s.count == 0
    assert np.isnan(s.mean)


def test_summarize_row_keys():
    row = summarize([1.0]).row()
    assert set(row) == {"count", "mean", "std", "min", "p50", "p90", "p99", "max"}


def test_percentile_matches_numpy():
    data = list(np.random.default_rng(0).random(100))
    assert percentile(data, 90) == pytest.approx(np.percentile(data, 90))
    assert np.isnan(percentile([], 50))


def test_bin_timeseries_counts_conserved():
    ts = [0.5, 1.5, 1.7, 9.9]
    counts = bin_timeseries(ts, duration=10.0, bin_width=1.0)
    assert counts.sum() == 4
    assert counts[0] == 1 and counts[1] == 2 and counts[9] == 1


def test_bin_timeseries_clamps_overflow():
    counts = bin_timeseries([15.0], duration=10.0, bin_width=1.0)
    assert counts[-1] == 1  # beyond-duration events land in the last bin


def test_bin_timeseries_validation():
    with pytest.raises(ValueError):
        bin_timeseries([1.0], duration=10.0, bin_width=0.0)
    with pytest.raises(ValueError):
        bin_timeseries([1.0], duration=-1.0)


def test_online_stats_matches_numpy():
    data = np.random.default_rng(1).random(500) * 10
    s = OnlineStats()
    for x in data:
        s.push(float(x))
    assert s.mean == pytest.approx(data.mean())
    assert s.variance == pytest.approx(data.var(), rel=1e-6)
    assert s.cov == pytest.approx(data.std() / data.mean(), rel=1e-6)


def test_online_stats_empty_and_zero_mean():
    s = OnlineStats()
    assert np.isnan(s.mean)
    s.push(0.0)
    assert s.cov == float("inf")


@settings(max_examples=100, deadline=None)
@given(
    left=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                            allow_nan=False, allow_infinity=False),
                  max_size=100),
    right=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
                   max_size=100),
)
def test_online_stats_merge_matches_pooled_recompute(left, right):
    a, b = OnlineStats(), OnlineStats()
    for x in left:
        a.push(x)
    for x in right:
        b.push(x)
    a.merge(b)
    pooled = np.asarray(left + right, dtype=float)
    assert a.n == pooled.size
    if pooled.size == 0:
        assert np.isnan(a.mean)
    else:
        assert a.mean == pytest.approx(pooled.mean(), abs=1e-6)
        assert a.variance == pytest.approx(pooled.var(), rel=1e-6, abs=1e-6)


def test_online_stats_merge_empty_edges():
    a, b = OnlineStats(), OnlineStats()
    b.push(2.0)
    b.push(4.0)
    a.merge(b)           # empty <- populated copies
    assert (a.n, a.mean) == (2, 3.0)
    a.merge(OnlineStats())  # populated <- empty is a no-op
    assert (a.n, a.mean) == (2, 3.0)


# ------------------------------------------------------------------- spans
def _clocked_recorder():
    clock = {"t": 0.0}

    def now():
        return clock["t"]

    return SpanRecorder(clock=now), clock


def test_span_context_manager_measures_clock():
    rec, clock = _clocked_recorder()
    with rec.span("invoke"):
        clock["t"] += 0.005
    assert rec.mean("invoke") == pytest.approx(0.005)


def test_span_record_external_duration():
    rec, _ = _clocked_recorder()
    rec.record("call_container", 0.0014)
    rec.record("call_container", 0.0016)
    assert rec.mean("call_container") == pytest.approx(0.0015)
    assert rec.summary("call_container").count == 2


def test_span_negative_duration_rejected():
    rec, _ = _clocked_recorder()
    with pytest.raises(ValueError):
        rec.record("x", -1.0)


def test_span_disabled_records_nothing():
    rec, clock = _clocked_recorder()
    rec.enabled = False
    with rec.span("invoke"):
        clock["t"] += 1.0
    rec.record("other", 1.0)
    assert rec.names() == []


def test_breakdown_table_grouping_and_order():
    rec, _ = _clocked_recorder()
    rec.record("call_container", 0.00136)
    rec.record("invoke", 0.000026)
    rec.record("custom_component", 0.001)
    rows = rec.breakdown_table(scale=1000.0)
    by_fn = {r["function"]: r for r in rows}
    assert by_fn["invoke"]["group"] == "Ingestion & Queuing"
    assert by_fn["call_container"]["group"] == "Agent Communication"
    assert by_fn["custom_component"]["group"] == "Other"
    assert by_fn["call_container"]["time"] == pytest.approx(1.36)
    # Canonical components come before "Other".
    assert rows[-1]["function"] == "custom_component"


def test_span_keep_spans_records_intervals():
    rec, clock = _clocked_recorder()
    rec.keep_spans = True
    with rec.span("invoke", tag="inv-1"):
        clock["t"] += 2.0
    spans = rec.spans()
    assert len(spans) == 1
    assert spans[0].duration == pytest.approx(2.0)
    assert spans[0].tag == "inv-1"


def test_span_reset():
    rec, _ = _clocked_recorder()
    rec.record("invoke", 1.0)
    rec.reset()
    assert rec.names() == []


def test_span_begin_end_measures_clock():
    rec, clock = _clocked_recorder()
    handle = rec.begin("invoke")
    clock["t"] += 0.004
    rec.end(handle)
    assert rec.mean("invoke") == pytest.approx(0.004)


def test_span_begin_disabled_is_noop():
    rec, clock = _clocked_recorder()
    rec.enabled = False
    handle = rec.begin("invoke")
    assert handle is None
    clock["t"] += 1.0
    rec.end(handle)  # accepts the disabled-path None without error
    assert rec.names() == []


def test_span_begin_end_nested():
    rec, clock = _clocked_recorder()
    outer = rec.begin("outer")
    clock["t"] += 1.0
    inner = rec.begin("inner")
    clock["t"] += 2.0
    rec.end(inner)
    clock["t"] += 3.0
    rec.end(outer)
    assert rec.mean("inner") == pytest.approx(2.0)
    assert rec.mean("outer") == pytest.approx(6.0)


def test_span_double_end_rejected():
    rec, clock = _clocked_recorder()
    handle = rec.begin("invoke")
    clock["t"] += 1.0
    rec.end(handle)
    with pytest.raises(ValueError):
        rec.end(handle)


def test_span_handles_are_pooled():
    rec, clock = _clocked_recorder()
    first = rec.begin("a")
    rec.end(first)
    second = rec.begin("b", tag="t")
    # The ended handle is recycled, with its fields reset for the new span.
    assert second is first
    assert second.name == "b" and second.tag == "t"
    clock["t"] += 1.0
    rec.end(second)
    assert rec.mean("b") == pytest.approx(1.0)


def test_span_begin_end_keeps_intervals():
    rec, clock = _clocked_recorder()
    rec.keep_spans = True
    handle = rec.begin("invoke", tag="inv-7")
    clock["t"] += 2.5
    rec.end(handle)
    spans = rec.spans()
    assert len(spans) == 1
    assert spans[0].duration == pytest.approx(2.5)
    assert spans[0].tag == "inv-7"


def test_dump_jsonl_requires_keep_spans(tmp_path):
    rec, _ = _clocked_recorder()
    rec.record("invoke", 1.0)  # aggregated only; no retained spans
    with pytest.raises(ValueError, match="keep_spans"):
        rec.dump_jsonl(tmp_path / "spans.jsonl")


def test_dump_jsonl_writes_all_spans(tmp_path):
    rec, clock = _clocked_recorder()
    rec.keep_spans = True
    for i in range(3):
        h = rec.begin("invoke", tag=f"inv-{i}")
        clock["t"] += 1.0
        rec.end(h)
    path = tmp_path / "spans.jsonl"
    written = rec.dump_jsonl(path)
    lines = path.read_text().splitlines()
    assert written == 3
    assert len(lines) == 3
    assert path.read_text().endswith("\n")


# ----------------------------------------------------------------- registry
def _record(outcome, cold=False, fn="f", overhead=0.001):
    return InvocationRecord(
        function=fn, arrival=0.0, outcome=outcome, exec_time=0.1,
        e2e_time=0.1 + overhead, overhead=overhead, cold=cold,
    )


def test_registry_outcome_tally():
    reg = MetricsRegistry()
    reg.record_invocation(_record(Outcome.WARM))
    reg.record_invocation(_record(Outcome.COLD, cold=True))
    reg.record_invocation(_record(Outcome.DROPPED))
    tally = reg.outcomes()
    assert tally[Outcome.WARM] == 1
    assert tally[Outcome.COLD] == 1
    assert tally[Outcome.DROPPED] == 1
    assert reg.count("invocations.completed") == 2


def test_registry_cold_and_drop_ratios():
    reg = MetricsRegistry()
    reg.record_invocation(_record(Outcome.WARM))
    reg.record_invocation(_record(Outcome.COLD, cold=True))
    reg.record_invocation(_record(Outcome.DROPPED))
    assert reg.cold_ratio() == pytest.approx(0.5)
    assert reg.drop_ratio() == pytest.approx(1 / 3)


def test_registry_by_function_breakdown():
    reg = MetricsRegistry()
    reg.record_invocation(_record(Outcome.WARM, fn="a"))
    reg.record_invocation(_record(Outcome.COLD, cold=True, fn="a"))
    reg.record_invocation(_record(Outcome.DROPPED, fn="b"))
    table = reg.outcomes_by_function()
    assert table["a"] == {"warm": 1, "cold": 1, "dropped": 0}
    assert table["b"] == {"warm": 0, "cold": 0, "dropped": 1}


def test_registry_overheads_exclude_drops():
    reg = MetricsRegistry()
    reg.record_invocation(_record(Outcome.WARM, overhead=0.002))
    reg.record_invocation(_record(Outcome.DROPPED))
    assert reg.overheads() == [0.002]


def test_registry_empty_ratios_nan():
    reg = MetricsRegistry()
    assert np.isnan(reg.cold_ratio())
    assert np.isnan(reg.drop_ratio())


def test_registry_reset():
    reg = MetricsRegistry()
    reg.incr("x")
    reg.record_invocation(_record(Outcome.WARM))
    reg.reset()
    assert reg.count("x") == 0
    assert reg.records == []


def test_invocation_record_stretch():
    rec = InvocationRecord(
        function="f", arrival=0.0, outcome=Outcome.WARM,
        exec_time=1.0, e2e_time=1.5,
    )
    assert rec.stretch == pytest.approx(1.5)
    zero = InvocationRecord(function="f", arrival=0.0, outcome=Outcome.DROPPED)
    assert np.isnan(zero.stretch)


# ------------------------------------------------------------------- energy
def test_energy_model_linear():
    m = EnergyModel(idle_watts=100.0, watts_per_core=2.0)
    assert m.power(0) == 100.0
    assert m.power(10) == 120.0
    with pytest.raises(ValueError):
        m.power(-1)


def test_energy_monitor_integrates_piecewise():
    clock = {"t": 0.0}
    mon = EnergyMonitor(clock=lambda: clock["t"],
                        model=EnergyModel(idle_watts=100.0, watts_per_core=10.0))
    mon.update(0.0)      # start at t=0, idle
    clock["t"] = 10.0
    mon.update(5.0)      # 10 s idle: 1000 J
    clock["t"] = 20.0
    joules = mon.finish()  # 10 s at 150 W: 1500 J
    assert joules == pytest.approx(2500.0)


def test_energy_monitor_clock_backwards_rejected():
    clock = {"t": 10.0}
    mon = EnergyMonitor(clock=lambda: clock["t"])
    mon.update(1.0)
    clock["t"] = 5.0
    with pytest.raises(ValueError):
        mon.update(2.0)


def test_energy_monitor_power_property():
    clock = {"t": 0.0}
    mon = EnergyMonitor(clock=lambda: clock["t"],
                        model=EnergyModel(idle_watts=100.0, watts_per_core=10.0))
    mon.update(0.0)
    assert mon.power == 100.0
    mon.update(4.0)
    assert mon.power == 140.0


def test_energy_monitor_joules_at_mid_interval():
    clock = {"t": 0.0}
    mon = EnergyMonitor(clock=lambda: clock["t"],
                        model=EnergyModel(idle_watts=100.0, watts_per_core=10.0))
    assert mon.joules_at(5.0) == 0.0  # not started yet
    mon.update(2.0)           # 120 W from t=0
    # Mid-interval read integrates the open segment without mutating it.
    assert mon.joules_at(5.0) == pytest.approx(600.0)
    assert mon.joules_at(5.0) == pytest.approx(600.0)  # repeatable
    with pytest.raises(ValueError):
        mon.joules_at(-1.0)   # clock going backwards
    clock["t"] = 10.0
    assert mon.finish() == pytest.approx(1200.0)  # reads did not double-count


def test_energy_monitor_integrates_known_schedule():
    # Busy-core schedule: 2 cores for 10 s, 5 cores for 20 s, idle for 30 s.
    clock = {"t": 0.0}
    mon = EnergyMonitor(clock=lambda: clock["t"],
                        model=EnergyModel(idle_watts=50.0, watts_per_core=4.0))
    mon.update(2.0)
    clock["t"] = 10.0
    mon.update(5.0)
    clock["t"] = 30.0
    mon.update(0.0)
    clock["t"] = 60.0
    joules = mon.finish()
    expected = 58.0 * 10 + 70.0 * 20 + 50.0 * 30
    assert joules == pytest.approx(expected)


def test_span_jsonl_round_trip(tmp_path):
    from repro.metrics import Span, dump_spans_jsonl, load_spans_jsonl

    spans = [
        Span("invoke", 0.0, 0.25, tag="1"),
        Span("exec", 0.25, 0.25, tag="1"),      # zero-duration span
        Span("lb_pick", 1.0, 1.001, tag=None),  # untagged
        Span("dequeue", 2.0, 2.5, tag="weird tag with spaces"),
    ]
    path = tmp_path / "spans.jsonl"
    assert dump_spans_jsonl(spans, path) == 4
    loaded = load_spans_jsonl(path)
    assert loaded == spans
    assert loaded[1].duration == 0.0
    assert loaded[2].tag is None


def test_recorder_dump_load_round_trip(tmp_path):
    rec, clock = _clocked_recorder()
    rec.keep_spans = True
    h = rec.begin("invoke", tag="inv-1")
    clock["t"] += 0.5
    rec.end(h)
    rec.record_span("exec", 0.5, 1.5, tag="inv-1")
    path = tmp_path / "spans.jsonl"
    rec.dump_jsonl(path)
    from repro.metrics import load_spans_jsonl

    assert load_spans_jsonl(path) == rec.spans()


def test_record_span_skips_aggregates():
    rec, _ = _clocked_recorder()
    rec.keep_spans = True
    rec.record_span("exec", 0.0, 1.0, tag="1")
    assert rec.names() == []          # not in the Table-2 aggregates
    assert len(rec.spans()) == 1      # but retained for decomposition
    with pytest.raises(ValueError):
        rec.record_span("exec", 1.0, 0.5)
    rec.keep_spans = False
    rec.record_span("exec", 0.0, 1.0)  # no-op without keep_spans
    assert len(rec.spans()) == 1
