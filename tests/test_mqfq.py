"""Tests for the MQFQ (start-time fair queueing) discipline."""

import numpy as np
import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.core.characteristics import CharacteristicsMap
from repro.core.function import Invocation
from repro.queueing import MQFQPolicy, make_queue_policy


def inv(name, warm=1.0, arrival=0.0):
    reg = FunctionRegistration(name=name, warm_time=warm, cold_time=warm + 1.0)
    return Invocation(function=reg, arrival=arrival)


def policy_with(warm_times: dict) -> MQFQPolicy:
    chars = CharacteristicsMap()
    for fqdn, warm in warm_times.items():
        chars.record_execution(fqdn, warm, cold=False)
    return MQFQPolicy(chars)


def test_tags_advance_within_a_flow():
    p = policy_with({"hot.1": 1.0})
    tags = [p.priority(inv("hot"), True) for _ in range(4)]
    # Each successive invocation starts after the previous one's service.
    assert tags == [0.0, 1.0, 2.0, 3.0]


def test_sparse_flow_not_penalized_by_flood():
    p = policy_with({"hot.1": 1.0, "sparse.1": 1.0})
    flood = [p.priority(inv("hot"), True) for _ in range(10)]
    sparse_tag = p.priority(inv("sparse"), True)
    # The sparse flow starts at the virtual time (0, nothing dispatched),
    # far ahead of the flood's back tags.
    assert sparse_tag == 0.0
    assert flood[-1] == 9.0


def test_virtual_time_advances_on_dispatch():
    p = policy_with({"a.1": 2.0})
    first = inv("a")
    p.priority(first, True)
    second = inv("a")
    p.priority(second, True)
    p.on_dispatch(first)
    assert p.virtual_time == 0.0  # first started at VT 0
    p.on_dispatch(second)
    assert p.virtual_time == pytest.approx(2.0)
    # New flows start no earlier than the current virtual time.
    assert p.priority(inv("b"), True) == pytest.approx(2.0)


def test_unknown_function_minimal_charge():
    p = MQFQPolicy(CharacteristicsMap())
    a = p.priority(inv("new"), True)
    b = p.priority(inv("new"), True)
    assert a == 0.0
    assert b == pytest.approx(MQFQPolicy.MIN_SERVICE)


def test_forget_discards_tag():
    p = policy_with({"a.1": 1.0})
    first = inv("a")
    p.priority(first, True)
    p.forget(first)
    p.on_dispatch(first)  # no-op now
    assert p.virtual_time == 0.0


def test_factory_aliases():
    chars = CharacteristicsMap()
    assert isinstance(make_queue_policy("mqfq", chars), MQFQPolicy)
    assert isinstance(make_queue_policy("SFQ", chars), MQFQPolicy)


def test_worker_level_fairness_under_flood():
    """A flooding function must not starve a sparse one under MQFQ."""

    def run(policy: str) -> float:
        env = Environment()
        worker = Worker(
            env,
            WorkerConfig(backend="null", cores=1, memory_mb=2048.0,
                         queue_policy=policy, bypass_enabled=False, seed=5),
        )
        worker.start()
        worker.register_sync(FunctionRegistration(name="hot", warm_time=0.5,
                                                  cold_time=0.6))
        worker.register_sync(FunctionRegistration(name="sparse",
                                                  warm_time=0.5, cold_time=0.6))
        # Teach the estimator, then flood.
        env.run_process(worker.invoke("hot.1"))
        env.run_process(worker.invoke("sparse.1"))
        for _ in range(40):
            worker.async_invoke("hot.1")
        sparse_done = worker.async_invoke("sparse.1")
        env.run(until=120.0)
        assert sparse_done.triggered
        return sparse_done.value.e2e_time

    fcfs_latency = run("fcfs")
    mqfq_latency = run("mqfq")
    # Under FCFS the sparse invocation waits behind the whole flood
    # (~40 x 0.5 s); under MQFQ it dispatches near the front.
    assert fcfs_latency > 15.0
    assert mqfq_latency < fcfs_latency / 4


def test_worker_accepts_mqfq_config():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0, queue_policy="mqfq"))
    worker.start()
    worker.register_sync(FunctionRegistration(name="f"))
    result = env.run_process(worker.invoke("f.1"))
    assert result.completed_at is not None
