"""Tests for the OpenWhisk baseline model (and its FaasCache variant)."""

import numpy as np
import pytest

from repro.baselines import GCModel, OpenWhiskConfig, OpenWhiskWorker
from repro.baselines.components import (
    ControllerModel,
    CouchDBModel,
    KafkaModel,
    NginxModel,
)
from repro.core.function import FunctionRegistration
from repro.sim import Environment


def reg(name="f", warm=0.1, cold=0.5, mem=256.0):
    return FunctionRegistration(name=name, warm_time=warm, cold_time=cold,
                                memory_mb=mem)


def make_ow(**overrides):
    env = Environment()
    defaults = dict(cores=8, memory_mb=4096.0, seed=11)
    defaults.update(overrides)
    worker = OpenWhiskWorker(env, OpenWhiskConfig(**defaults))
    worker.start()
    return env, worker


# -------------------------------------------------------------- components
def test_component_latency_ranges():
    rng = np.random.default_rng(0)
    assert 0 < NginxModel().latency(rng) < 0.01
    assert ControllerModel().latency(rng, inflight=1000) <= 0.003  # paper bound
    assert KafkaModel().latency(rng, backlog=0) >= 0.004
    assert CouchDBModel().write_latency(rng, inflight=0) <= 0.5


def test_kafka_latency_grows_with_backlog():
    rng = np.random.default_rng(1)
    low = np.mean([KafkaModel().latency(rng, 0) for _ in range(200)])
    high = np.mean([KafkaModel().latency(rng, 100) for _ in range(200)])
    assert high > low + 0.1


def test_couchdb_heavy_tail_capped():
    rng = np.random.default_rng(2)
    samples = [CouchDBModel().write_latency(rng, 0) for _ in range(2000)]
    assert max(samples) <= 0.5
    assert np.percentile(samples, 99) > np.percentile(samples, 50) * 3


def test_gc_pauses_accumulate():
    env = Environment()
    gc = GCModel(env, np.random.default_rng(3), base_interval=1.0)
    env.process(gc.collector())
    env.run(until=60.0)
    gc.stop()
    assert gc.pauses > 10
    assert gc.total_pause_time > 0


def test_gc_stall_blocks_until_pause_end():
    env = Environment()
    gc = GCModel(env, np.random.default_rng(4))
    gc.pause_until = 5.0

    def proc():
        yield from gc.stall()
        return env.now

    assert env.run_process(proc()) == 5.0


def test_gc_validation():
    env = Environment()
    with pytest.raises(ValueError):
        GCModel(env, np.random.default_rng(0), base_interval=0.0)


# ------------------------------------------------------------------ worker
def test_ow_cold_then_warm():
    env, ow = make_ow()
    ow.register_sync(reg())
    first = env.run_process(ow.invoke("f.1"))
    assert first.cold
    second = env.run_process(ow.invoke("f.1"))
    assert not second.cold


def test_ow_overhead_exceeds_iluvatar_scale():
    env, ow = make_ow()
    ow.register_sync(reg())
    env.run_process(ow.invoke("f.1"))
    overheads = []
    for _ in range(30):
        inv = env.run_process(ow.invoke("f.1"))
        overheads.append(inv.overhead)
    # Paper Figure 1: OpenWhisk warm overhead is >10 ms.
    assert np.median(overheads) > 0.010


def test_ow_buffer_full_drops():
    env, ow = make_ow(buffer_max=4, cores=1)
    ow.register_sync(reg(warm=5.0, cold=10.0))
    events = [ow.async_invoke("f.1") for _ in range(10)]
    env.run(until=1.0)
    done = [e.value for e in events if e.triggered]
    assert sum(1 for i in done if i.dropped) >= 6


def test_ow_memory_starvation_drops():
    env, ow = make_ow(memory_mb=300.0, memory_wait_timeout=1.0)
    ow.register_sync(reg(name="big", mem=256.0, warm=30.0, cold=40.0))
    ow.register_sync(reg(name="other", mem=256.0))
    first = ow.async_invoke("big.1")
    env.run(until=5.0)
    second = ow.async_invoke("other.1")
    env.run(until=15.0)
    assert second.triggered and second.value.dropped


def test_ow_cpu_stretch_under_load():
    env, ow = make_ow(cores=1)
    ow.register_sync(reg(name="a", warm=2.0, cold=2.5, mem=64.0))
    ow.register_sync(reg(name="b", warm=2.0, cold=2.5, mem=64.0))
    events = [ow.async_invoke("a.1"), ow.async_invoke("b.1")]
    env.run(until=30.0)
    done = [e.value for e in events]
    # At least one ran concurrently with the other on 1 core -> stretched
    # beyond its base execution time.
    assert max(i.e2e_time for i in done) > 3.0


def test_ow_ttl_policy_expires_containers():
    env, ow = make_ow(keepalive_ttl=10.0)
    ow.register_sync(reg())
    env.run_process(ow.invoke("f.1"))
    env.run(until=env.now + 60.0)  # TTL reaper sweeps
    assert ow.pool.available_count() == 0
    inv = env.run_process(ow.invoke("f.1"))
    assert inv.cold


def test_faascache_variant_uses_gd():
    env = Environment()
    fc = OpenWhiskWorker(env, OpenWhiskConfig(keepalive_policy="GD"))
    assert fc.keepalive_policy.name == "GD"


def test_ow_status_fields():
    env, ow = make_ow()
    ow.register_sync(reg())
    env.run_process(ow.invoke("f.1"))
    status = ow.status()
    assert status["warm_containers"] == 1
    assert status["inflight"] == 0
    assert "gc_pauses" in status


def test_ow_unknown_function():
    from repro.errors import FunctionNotRegistered

    env, ow = make_ow()
    with pytest.raises(FunctionNotRegistered):
        ow.async_invoke("ghost.1")


def test_ow_config_validation():
    with pytest.raises(ValueError):
        OpenWhiskConfig(cores=0)
    with pytest.raises(ValueError):
        OpenWhiskConfig(buffer_max=0)


# ------------------------------------------------------- shared lifecycle
def test_ow_drives_shared_stage_pipeline():
    """The baseline runs the same InvocationContext through the shared
    stage names (no dispatch stage: OpenWhisk has no dispatcher)."""
    from repro.core.lifecycle import (
        ACQUIRE, ADMIT, COLD_CREATE, COMPLETE, ENQUEUE, EXECUTE, STAGES, WARM,
        InvocationContext,
    )
    from repro.metrics.registry import Outcome

    env, worker = make_ow()
    log = []
    for stage in STAGES:
        worker.lifecycle.hooks.on_enter(
            stage, lambda s, ctx: log.append((s, "enter", ctx.inv.id))
        )
        worker.lifecycle.hooks.on_exit(
            stage, lambda s, ctx: log.append((s, "exit", ctx.inv.id))
        )
    worker.lifecycle.keep_contexts = True
    worker.register_sync(reg())
    results = []

    def submit(at):
        yield env.timeout(at)
        inv = yield from worker.invoke("f.1")
        results.append(inv)

    env.process(submit(0.0), name="cold")
    env.process(submit(5.0), name="warm")
    env.run(until=30.0)

    assert [inv.cold for inv in results] == [True, False]
    cold_inv, warm_inv = results

    def boundaries(inv_id):
        return [(s, e) for s, e, i in log if i == inv_id]

    def pairs(stage_list):
        return [(s, e) for s in stage_list for e in ("enter", "exit")]

    assert boundaries(cold_inv.id) == pairs(
        [ADMIT, ENQUEUE, ACQUIRE, COLD_CREATE, EXECUTE, COMPLETE]
    )
    assert boundaries(warm_inv.id) == pairs(
        [ADMIT, ENQUEUE, ACQUIRE, WARM, EXECUTE, COMPLETE]
    )
    contexts = worker.lifecycle.contexts
    assert [type(c) for c in contexts] == [InvocationContext, InvocationContext]
    assert [c.outcome for c in contexts] == [Outcome.COLD, Outcome.WARM]


def test_ow_drop_closes_shared_context():
    from repro.core.lifecycle import DROP
    from repro.metrics.registry import Outcome

    env, worker = make_ow(buffer_max=1, memory_mb=4096.0)
    dropped = []
    worker.lifecycle.hooks.on_exit(DROP, lambda s, ctx: dropped.append(ctx))
    worker.register_sync(reg(warm=1.0, cold=2.0))
    for _ in range(5):
        worker.async_invoke("f.1")
    env.run(until=30.0)
    assert dropped, "expected buffer-full drops"
    for ctx in dropped:
        assert ctx.outcome is Outcome.DROPPED
        assert ctx.drop_reason == "activation buffer full"
