"""Unit tests for the process-pool sweep runner (`repro.parallel`)."""

import os
import time

import pytest

from repro.parallel import (
    effective_jobs,
    last_run_info,
    resolve_jobs,
    run_parallel,
)

# Task functions must be top-level so pool workers can import them.


def _identity(shared, x):
    return x


def _with_shared(shared, key):
    return (shared[key], os.getpid())


def _scaled(shared, x):
    return shared * x


def _boom(shared, x):
    if x == 3:
        raise ValueError("cell 3 exploded")
    return x


def _reverse_sleeper(shared, index, count):
    # Later-submitted cells finish first: exposes completion-order leaks.
    time.sleep(0.02 * (count - index))
    return index


# -- resolve_jobs ---------------------------------------------------------


def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_zero_means_all_cores(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    cores = os.cpu_count() or 1
    assert resolve_jobs(0) == cores
    assert resolve_jobs(-1) == cores


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_effective_jobs_capped_by_tasks():
    assert effective_jobs(8, 3) == 3
    assert effective_jobs(2, 100) == 2
    assert effective_jobs(4, 0) == 1


# -- run_parallel ---------------------------------------------------------


def test_serial_path_runs_in_process():
    pid_results = run_parallel(_with_shared, [("a",), ("b",)], n_jobs=1,
                               shared={"a": 1, "b": 2})
    assert [v for v, _ in pid_results] == [1, 2]
    assert all(pid == os.getpid() for _, pid in pid_results)


def test_parallel_matches_serial():
    tasks = [(i,) for i in range(20)]
    assert run_parallel(_identity, tasks, n_jobs=2) == \
        run_parallel(_identity, tasks, n_jobs=1)


def test_results_in_submission_order_despite_completion_order():
    count = 6
    tasks = [(i, count) for i in range(count)]
    out = run_parallel(_reverse_sleeper, tasks, n_jobs=2, chunksize=1)
    assert out == list(range(count))


def test_shared_payload_reaches_workers():
    out = run_parallel(_scaled, [(x,) for x in range(8)], n_jobs=2, shared=10)
    assert out == [10 * x for x in range(8)]


def test_empty_task_list():
    assert run_parallel(_identity, [], n_jobs=4) == []


@pytest.mark.parametrize("n_jobs", [1, 2])
def test_task_exception_propagates(n_jobs):
    with pytest.raises(ValueError, match="cell 3 exploded"):
        run_parallel(_boom, [(i,) for i in range(6)], n_jobs=n_jobs)


def test_pool_failure_falls_back_to_serial():
    tasks = [(i,) for i in range(4)]
    with pytest.warns(RuntimeWarning, match="running serially"):
        out = run_parallel(_identity, tasks, n_jobs=2,
                           start_method="no-such-start-method")
    assert out == [0, 1, 2, 3]


def test_repro_jobs_env_drives_pool(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    out = run_parallel(_with_shared, [("k",)] * 4, shared={"k": 7})
    assert [v for v, _ in out] == [7, 7, 7, 7]


def test_last_run_info_records_serial_path():
    run_parallel(_identity, [(1,), (2,)], n_jobs=1)
    info = last_run_info()
    assert info["pool_used"] is False
    assert info["fallback_reason"] == "single worker requested"
    assert info["jobs"] == 1 and info["tasks"] == 2
    assert info["cpu_count"] == (os.cpu_count() or 1)


def test_last_run_info_records_fallback_reason():
    with pytest.warns(RuntimeWarning):
        run_parallel(_identity, [(i,) for i in range(4)], n_jobs=2,
                     start_method="no-such-start-method")
    info = last_run_info()
    assert info["pool_used"] is False
    assert "no-such-start-method" in info["fallback_reason"]


def test_last_run_info_reflects_pool_runs():
    # A real pool run (pool_used=True, no reason) when this machine can
    # start one; an honest fallback record when it cannot.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        run_parallel(_identity, [(i,) for i in range(4)], n_jobs=2)
    info = last_run_info()
    if info["pool_used"]:
        assert info["fallback_reason"] is None
    else:
        assert info["fallback_reason"]
    assert info["jobs"] == 2 and info["tasks"] == 4
