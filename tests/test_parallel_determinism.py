"""Parallel == serial: the fan-out must never change an experiment.

Same seed, any ``n_jobs``: every sweep returns bit-identical rows in
identical order.  These tests pin the contract the whole
``repro.parallel`` layer is built on.
"""

import dataclasses

import pytest

from repro.experiments.defaults import Scale
from repro.experiments.fig6_litmus import run_litmus
from repro.experiments.keepalive_sweep import fig4_rows, make_traces, run_keepalive_sweep
from repro.experiments.lb_ablation import run_lb_ablation
from repro.experiments.queue_ablation import run_queue_policy_ablation

TINY = Scale(
    name="tiny",
    dataset_functions=100,
    dataset_minutes=30,
    rare_n=30,
    representative_n=15,
    random_n=10,
    cache_sizes_gb=(1.0, 2.0),
    fig1_clients=(1,),
    fig1_duration=5.0,
    litmus_duration=30.0,
)


@pytest.fixture(scope="module")
def tiny_traces():
    return make_traces(TINY)


def test_keepalive_sweep_parallel_bit_identical(tiny_traces):
    serial = run_keepalive_sweep(TINY, traces=tiny_traces, n_jobs=1)
    parallel = run_keepalive_sweep(TINY, traces=tiny_traces, n_jobs=4)
    # KeepAliveResult carries a mutable dict and has identity equality
    # (eq=False), so compare field-by-field: every float exactly, the
    # per-function cold counts included, and the list compare also pins
    # the row order.
    as_rows = lambda results: [
        (name, dataclasses.asdict(r)) for name, r in results
    ]
    assert as_rows(serial) == as_rows(parallel)
    assert [name for name, _ in serial] == [name for name, _ in parallel]
    assert fig4_rows(serial) == fig4_rows(parallel)


def test_keepalive_sweep_grid_order(tiny_traces):
    results = run_keepalive_sweep(TINY, traces=tiny_traces, n_jobs=4,
                                  policies=("TTL", "GD"))
    expected = [
        (trace_name, policy, gb * 1024.0)
        for trace_name in tiny_traces
        for policy in ("TTL", "GD")
        for gb in TINY.cache_sizes_gb
    ]
    got = [(name, r.policy, r.cache_size_mb) for name, r in results]
    assert got == expected


def test_queue_ablation_parallel_bit_identical():
    serial = run_queue_policy_ablation(duration=20.0, n_jobs=1)
    parallel = run_queue_policy_ablation(duration=20.0, n_jobs=4)
    assert serial == parallel
    assert [r["policy"] for r in serial] == ["fcfs", "sjf", "eedf", "rare", "mqfq"]


def test_litmus_parallel_bit_identical():
    kwargs = dict(workloads=("two_size",), repeats=2)
    assert run_litmus(TINY, n_jobs=1, **kwargs) == run_litmus(TINY, n_jobs=3, **kwargs)


def test_lb_ablation_parallel_bit_identical():
    kwargs = dict(bound_factors=(1.0, 1.5), duration=30.0)
    assert run_lb_ablation(n_jobs=1, **kwargs) == run_lb_ablation(n_jobs=2, **kwargs)
