"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keepalive.cache import KeepAliveCache
from repro.keepalive.policies import make_policy
from repro.keepalive.simulator import simulate
from repro.loadbalancer.chbl import ConsistentHashRing
from repro.metrics.stats import OnlineStats, bin_timeseries
from repro.sim import Environment, Gauge
from repro.trace.model import Trace, TraceFunction
from repro.trace.replay import expand_minute_bucket


# --------------------------------------------------------------- cache ops
op = st.tuples(
    st.sampled_from(["insert", "lookup", "finish_all", "advance", "expire"]),
    st.integers(min_value=0, max_value=5),   # function id
    st.floats(min_value=1.0, max_value=400.0),  # memory
)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(op, min_size=1, max_size=60),
    policy_name=st.sampled_from(["LRU", "TTL", "GD", "LND", "FREQ"]),
    capacity=st.floats(min_value=100.0, max_value=2000.0),
)
def test_cache_invariants_hold_under_arbitrary_ops(ops, policy_name, capacity):
    cache = KeepAliveCache(make_policy(policy_name), capacity_mb=capacity)
    now = 0.0
    claimed = []
    for kind, fid, mem in ops:
        if kind == "insert":
            entry = cache.insert(f"f{fid}", mem, 1.0, 0.1, now)
            if entry is not None:
                cache.finish(entry, now + 0.5)
        elif kind == "lookup":
            entry = cache.lookup(f"f{fid}", now)
            if entry is not None:
                claimed.append(entry)
        elif kind == "finish_all":
            for entry in claimed:
                cache.finish(entry, now + 0.1)
            claimed.clear()
        elif kind == "advance":
            now += float(fid) + 1.0
        elif kind == "expire":
            cache.expire(now)
        cache.check_invariants(now=now)
    # Conservation: hits + misses == lookups issued.
    lookups = sum(1 for k, *_ in ops if k == "lookup")
    assert cache.stats.hits + cache.stats.misses == lookups


@settings(max_examples=40, deadline=None)
@given(
    stamps=st.lists(
        st.floats(min_value=0.0, max_value=10_000.0), min_size=1, max_size=200
    ),
    policy_name=st.sampled_from(["LRU", "TTL", "GD", "LND", "FREQ", "HIST"]),
)
def test_simulator_accounting_identities(stamps, policy_name):
    functions = [
        TraceFunction(name="f", memory_mb=100.0, warm_time=1.0, cold_time=2.0)
    ]
    ts = np.sort(np.asarray(stamps))
    trace = Trace(functions, ts, np.zeros(len(stamps), dtype=np.int64),
                  duration=10_001.0)
    r = simulate(trace, policy_name, 1024.0)
    assert r.cold_starts + r.warm_starts == len(stamps)
    assert r.cold_starts >= 1  # the first invocation is always cold
    assert r.total_warm_exec == pytest.approx(len(stamps) * 1.0)
    assert r.total_cold_overhead == pytest.approx(r.cold_starts * 1.0)
    assert 0.0 <= r.cold_ratio <= 1.0


# --------------------------------------------------------------- hash ring
@settings(max_examples=40, deadline=None)
@given(
    members=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        min_size=1, max_size=8, unique=True,
    ),
    key=st.text(alphabet="xyz0123456789", min_size=1, max_size=12),
)
def test_ring_successors_is_permutation(members, key):
    ring = ConsistentHashRing(vnodes=8)
    for m in members:
        ring.add(m)
    order = ring.successors(key)
    assert sorted(order) == sorted(members)


@settings(max_examples=30, deadline=None)
@given(
    members=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        min_size=2, max_size=8, unique=True,
    ),
)
def test_ring_removal_only_moves_victims_keys(members):
    ring = ConsistentHashRing(vnodes=16)
    for m in members:
        ring.add(m)
    keys = [f"key-{i}" for i in range(50)]
    before = {k: ring.successors(k)[0] for k in keys}
    victim = members[0]
    ring.remove(victim)
    for k in keys:
        if before[k] != victim:
            assert ring.successors(k)[0] == before[k]


# ------------------------------------------------------------------- gauge
@settings(max_examples=50, deadline=None)
@given(
    amounts=st.lists(
        st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=30
    )
)
def test_gauge_take_give_conserves_level(amounts):
    env = Environment()
    g = Gauge(env, capacity=100.0)
    taken = []
    for amount in amounts:
        if g.try_take(amount):
            taken.append(amount)
    assert g.level == pytest.approx(100.0 - sum(taken))
    for amount in taken:
        g.give(amount)
    assert g.level == pytest.approx(100.0)


# ----------------------------------------------------------------- replay
@settings(max_examples=60, deadline=None)
@given(
    minute=st.integers(min_value=0, max_value=1439),
    count=st.integers(min_value=1, max_value=200),
)
def test_minute_bucket_expansion_properties(minute, count):
    ts = expand_minute_bucket(minute, count)
    assert ts.size == count
    assert ts[0] == minute * 60.0  # first at the start of the minute
    assert np.all(ts >= minute * 60.0)
    assert np.all(ts < (minute + 1) * 60.0)  # all within the minute
    if count > 1:
        gaps = np.diff(ts)
        assert np.allclose(gaps, 60.0 / count)  # equally spaced


# ------------------------------------------------------------------- stats
@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=200,
    )
)
def test_online_stats_agrees_with_numpy(data):
    s = OnlineStats()
    for x in data:
        s.push(x)
    arr = np.asarray(data)
    assert s.mean == pytest.approx(arr.mean(), rel=1e-6, abs=1e-6)
    assert s.variance == pytest.approx(arr.var(), rel=1e-5, abs=1e-4)


@settings(max_examples=50, deadline=None)
@given(
    stamps=st.lists(
        st.floats(min_value=0.0, max_value=99.9), min_size=0, max_size=100
    ),
    width=st.floats(min_value=0.5, max_value=10.0),
)
def test_bin_timeseries_conserves_events(stamps, width):
    counts = bin_timeseries(stamps, duration=100.0, bin_width=width)
    assert counts.sum() == len(stamps)
    assert np.all(counts >= 0)


# ------------------------------------------------------------ trace merges
@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
    b=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
)
def test_trace_merge_conserves_invocations(a, b):
    fa = [TraceFunction(name="fa", memory_mb=10.0, warm_time=0.1, cold_time=0.2)]
    fb = [TraceFunction(name="fb", memory_mb=10.0, warm_time=0.1, cold_time=0.2)]
    ta = Trace(fa, np.sort(np.asarray(a)), np.zeros(len(a), dtype=np.int64),
               duration=101.0)
    tb = Trace(fb, np.sort(np.asarray(b)), np.zeros(len(b), dtype=np.int64),
               duration=101.0)
    merged = Trace.merge([ta, tb])
    assert len(merged) == len(a) + len(b)
    assert np.all(np.diff(merged.timestamps) >= 0)
