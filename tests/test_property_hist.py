"""Property tests for the HIST policy's preload machinery and the
simulator's invariants under it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keepalive.policies import HistogramPolicy
from repro.keepalive.simulator import KeepAliveSimulator
from repro.trace.model import Trace, TraceFunction


@settings(max_examples=40, deadline=None)
@given(
    iats=st.lists(
        st.floats(min_value=1.0, max_value=7200.0), min_size=3, max_size=60
    )
)
def test_hist_windows_are_ordered(iats):
    p = HistogramPolicy(min_samples=2)
    t = 0.0
    for gap in iats:
        p.record_arrival("f", t)
        t += gap
    windows = p._windows("f")
    if windows is not None:
        head, tail = windows
        assert 0.0 <= head <= tail
        # Bucket edges: both are multiples of 60 s.
        assert head % 60.0 == 0.0
        assert tail % 60.0 == 0.0


@settings(max_examples=25, deadline=None)
@given(
    gaps=st.lists(
        st.sampled_from([30.0, 120.0, 300.0, 1800.0]), min_size=5, max_size=80
    ),
    n_functions=st.integers(min_value=1, max_value=4),
)
def test_hist_simulation_invariants(gaps, n_functions):
    functions = [
        TraceFunction(name=f"f{k}", memory_mb=100.0, warm_time=1.0,
                      cold_time=2.0)
        for k in range(n_functions)
    ]
    ts, idx = [], []
    clocks = [0.0] * n_functions
    for i, gap in enumerate(gaps):
        k = i % n_functions
        clocks[k] += gap
        ts.append(clocks[k])
        idx.append(k)
    order = np.argsort(ts)
    trace = Trace(
        functions,
        np.asarray(ts)[order],
        np.asarray(idx, dtype=np.int64)[order],
        duration=max(ts) + 1.0,
    )
    sim = KeepAliveSimulator(HistogramPolicy(min_samples=2), 1024.0)
    result = sim.run(trace)
    sim.cache.check_invariants(now=sim.now)
    assert result.cold_starts + result.warm_starts == len(gaps)
    assert result.preloads >= 0
    assert sim.cache.used_mb <= 1024.0 + 1e-9


def test_hist_preload_request_ordering():
    from repro.keepalive.policies import PreloadRequest

    a = PreloadRequest(when=1.0, fqdn="a", keep_until=5.0)
    b = PreloadRequest(when=2.0, fqdn="b", keep_until=3.0)
    assert a < b
    assert not (b < a)
