"""Property test: the log-bucket histogram's quantile estimate is always
within one bucket boundary of the exact empirical (nearest-rank) quantile."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LogHistogram

samples_strategy = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(samples=samples_strategy, q=st.floats(min_value=0.0, max_value=100.0))
def test_quantile_within_one_bucket_of_exact(samples, q):
    h = LogHistogram()  # default shape: 1e-5 .. 1e4, 10 buckets/decade
    for s in samples:
        h.observe(s)

    rank = max(1, math.ceil(q / 100.0 * len(samples)))
    exact = sorted(samples)[rank - 1]
    est = h.quantile(q)

    # The estimate and the exact nearest-rank quantile land in the same
    # bucket or an adjacent one, regardless of input distribution.
    assert abs(h.bucket_index(est) - h.bucket_index(exact)) <= 1
    # The estimate never escapes the observed sample range.
    assert 0.0 <= est <= h.maximum


@settings(max_examples=100, deadline=None)
@given(samples=samples_strategy)
def test_count_total_and_extremes_exact(samples):
    h = LogHistogram()
    for s in samples:
        h.observe(s)
    assert h.count == len(samples)
    assert math.isclose(h.total, math.fsum(samples), rel_tol=1e-12, abs_tol=1e-12)
    assert h.minimum == min(samples)
    assert h.maximum == max(samples)
    assert sum(c for _, c in h.nonzero_buckets()) == len(samples)
