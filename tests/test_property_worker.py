"""Property test: the worker conserves invocations.

Every fired invocation resolves exactly once — warm, cold, dropped, or
timed out; nothing is lost or double-counted, memory returns to capacity
once the system drains, and no containers leak.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.containers.base import BackendLatency
from repro.metrics import Outcome

workload_step = st.tuples(
    st.integers(min_value=0, max_value=3),          # function id
    st.floats(min_value=0.0, max_value=2.0),        # gap before firing
)


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(workload_step, min_size=1, max_size=40),
    queue_policy=st.sampled_from(["fcfs", "eedf", "mqfq"]),
    memory_mb=st.sampled_from([600.0, 1200.0, 4096.0]),
)
def test_invocation_conservation(steps, queue_policy, memory_mb):
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            backend="null",
            cores=2,
            memory_mb=memory_mb,
            free_memory_buffer_mb=0.0,
            queue_policy=queue_policy,
            memory_wait_timeout=2.0,
            seed=7,
        ),
    )
    worker.start()
    profiles = [
        ("f0", 64.0, 0.05, 0.1, None),
        ("f1", 256.0, 0.5, 1.0, None),
        ("f2", 512.0, 1.5, 3.0, None),
        ("f3", 128.0, 0.2, 0.4, 0.3),   # timeout-prone
    ]
    for name, mem, warm, cold, limit in profiles:
        worker.register_sync(
            FunctionRegistration(name=name, memory_mb=mem, warm_time=warm,
                                 cold_time=cold, timeout=limit)
        )

    events = []

    def driver():
        for fid, gap in steps:
            if gap > 0:
                yield env.timeout(gap)
            events.append(worker.async_invoke(f"f{fid}.1"))

    env.process(driver())
    env.run(until=600.0)
    worker.stop()

    # Conservation: every invocation resolved exactly once.
    assert all(e.triggered for e in events)
    tally = worker.metrics.outcomes()
    assert sum(tally.values()) == len(steps)
    resolved = (
        tally[Outcome.WARM] + tally[Outcome.COLD] + tally[Outcome.BYPASSED]
        + tally[Outcome.DROPPED] + tally[Outcome.TIMEOUT]
    )
    assert resolved == len(steps)

    # Nothing in flight after drain; memory accounting balances.
    assert worker.pool.in_use_count() == 0
    env.run(until=env.now + 60.0)  # let async destroys settle
    expected_free = worker.memory.capacity - sum(
        e.memory_mb for entries in worker.pool._available.values()
        for e in entries
    )
    assert worker.memory.level == pytest.approx(expected_free, abs=1e-6)


def test_backend_latency_validation():
    with pytest.raises(ValueError):
        BackendLatency(create_mean=-1.0, create_jitter=0.0, rpc_overhead=0.0,
                       agent_start=0.0, destroy_mean=0.0)
    ok = BackendLatency(create_mean=0.1, create_jitter=0.0, rpc_overhead=0.0,
                        agent_start=0.0, destroy_mean=0.0)
    assert ok.create_mean == 0.1
