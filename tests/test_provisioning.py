"""Tests for the dynamic-provisioning miss-speed controller."""

import pytest

from repro.provisioning import MissSpeedController, ProvisioningConfig


def make_controller(**overrides):
    defaults = dict(
        target_miss_speed=1.0,   # 1 miss/s target for easy arithmetic
        error_tolerance=0.30,
        gain=0.5,
        min_size_mb=100.0,
        max_size_mb=10_000.0,
        initial_size_mb=1000.0,
        window=10.0,
    )
    defaults.update(overrides)
    return MissSpeedController(ProvisioningConfig(**defaults))


def test_config_validation():
    with pytest.raises(ValueError):
        ProvisioningConfig(target_miss_speed=0.0)
    with pytest.raises(ValueError):
        ProvisioningConfig(gain=0.0)
    with pytest.raises(ValueError):
        ProvisioningConfig(min_size_mb=2000.0, initial_size_mb=1000.0)
    with pytest.raises(ValueError):
        ProvisioningConfig(window=0.0)


def test_first_update_establishes_baseline():
    c = make_controller()
    assert c.update(0.0, 0) == 1000.0
    assert c.history == []


def test_within_tolerance_no_resize():
    c = make_controller()
    c.update(0.0, 0)
    # 11 misses in 10 s = 1.1/s; error 10% < 30% tolerance.
    size = c.update(10.0, 11)
    assert size == 1000.0
    assert not c.history[-1].resized


def test_miss_speed_above_target_grows():
    c = make_controller()
    c.update(0.0, 0)
    # 20 misses in 10 s = 2/s; error +100% -> grow by gain*error = +50%.
    size = c.update(10.0, 20)
    assert size == pytest.approx(1500.0)
    assert c.history[-1].resized


def test_miss_speed_below_target_shrinks():
    c = make_controller()
    c.update(0.0, 0)
    # 2 misses in 10 s = 0.2/s; error -80% -> shrink by 40%.
    size = c.update(10.0, 2)
    assert size == pytest.approx(600.0)


def test_bounds_respected():
    c = make_controller()
    c.update(0.0, 0)
    for window in range(1, 50):
        c.update(window * 10.0, 0)  # persistent zero misses
    assert c.size_mb == 100.0  # clamped at min
    c2 = make_controller()
    c2.update(0.0, 0)
    misses = 0
    for window in range(1, 50):
        misses += 1000
        c2.update(window * 10.0, misses)
    assert c2.size_mb == 10_000.0  # clamped at max


def test_average_size_and_savings():
    c = make_controller(initial_size_mb=1000.0, max_size_mb=2000.0)
    c.update(0.0, 0)
    c.update(10.0, 2)   # shrink
    c.update(20.0, 4)
    avg = c.average_size_mb
    assert avg < 1000.0
    assert c.savings_vs_static(2000.0) == pytest.approx(1.0 - avg / 2000.0)
    with pytest.raises(ValueError):
        c.savings_vs_static(0.0)


def test_timeseries_parallel_arrays():
    c = make_controller()
    c.update(0.0, 0)
    c.update(10.0, 5)
    c.update(20.0, 9)
    times, sizes, speeds = c.timeseries()
    assert len(times) == len(sizes) == len(speeds) == 2
    assert times == [10.0, 20.0]


def test_non_advancing_clock_ignored():
    c = make_controller()
    c.update(0.0, 0)
    size_before = c.size_mb
    assert c.update(0.0, 100) == size_before
