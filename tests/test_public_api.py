"""Public-API surface tests: exports, errors, version."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ContainerError,
    DuplicateRegistration,
    FunctionNotRegistered,
    InsufficientResources,
    InvocationDropped,
    ReproError,
)


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_matches_package_metadata():
    assert repro.__version__ == "1.0.0"


def test_subpackage_exports_resolve():
    import repro.baselines as b
    import repro.containers as c
    import repro.experiments as e
    import repro.keepalive as k
    import repro.loadbalancer as lb
    import repro.loadgen as lg
    import repro.metrics as m
    import repro.provisioning as p
    import repro.queueing as q
    import repro.sim as s
    import repro.trace as t
    import repro.workloads as w

    for module in (b, c, e, k, lb, lg, m, p, q, s, t, w):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_error_hierarchy():
    for exc in (
        FunctionNotRegistered("f"),
        DuplicateRegistration("f"),
        InvocationDropped("f"),
        ContainerError(),
        InsufficientResources(),
        ConfigurationError(),
    ):
        assert isinstance(exc, ReproError)


def test_error_messages_carry_context():
    err = FunctionNotRegistered("missing.1")
    assert "missing.1" in str(err)
    assert err.name == "missing.1"
    drop = InvocationDropped("f.1", reason="queue overflow")
    assert drop.function == "f.1"
    assert "queue overflow" in str(drop)
    dup = DuplicateRegistration("twice.1")
    assert dup.name == "twice.1"


def test_quickstart_docstring_snippet_runs():
    """The module docstring's control-plane example must actually work."""
    from repro import Environment, FunctionRegistration, Worker, WorkerConfig

    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null"))
    worker.start()
    worker.register_sync(
        FunctionRegistration(name="hello", warm_time=0.05, cold_time=0.5)
    )
    inv = env.run_process(worker.invoke("hello.1"))
    assert inv.cold and inv.e2e_time > 0
