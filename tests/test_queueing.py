"""Unit tests for queue disciplines, bypass, and the concurrency regulator."""

import pytest

from repro.core.characteristics import CharacteristicsMap
from repro.core.function import FunctionRegistration, Invocation
from repro.queueing import (
    AIMDConfig,
    ConcurrencyRegulator,
    EEDFPolicy,
    FCFSPolicy,
    LoadTracker,
    NoBypass,
    RAREPolicy,
    ShortFunctionBypass,
    SJFPolicy,
    make_queue_policy,
)
from repro.sim import Environment


def inv(name="f", arrival=0.0, warm=0.1, cold=0.5):
    reg = FunctionRegistration(name=name, warm_time=warm, cold_time=cold)
    return Invocation(function=reg, arrival=arrival)


def chars_with(fqdn, warm=None, cold=None, iats=()):
    m = CharacteristicsMap()
    if warm is not None:
        m.record_execution(fqdn, warm, cold=False)
    if cold is not None:
        m.record_execution(fqdn, cold, cold=True)
    t = 0.0
    m_stats = m.get(fqdn)
    for gap in iats:
        m_stats.record_arrival(t)
        t += gap
    return m


# ---------------------------------------------------------------- policies
def test_fcfs_orders_by_arrival():
    p = FCFSPolicy(CharacteristicsMap())
    assert p.priority(inv(arrival=1.0), True) < p.priority(inv(arrival=2.0), True)


def test_sjf_orders_by_expected_time():
    m = CharacteristicsMap()
    m.record_execution("short.1", 0.1, cold=False)
    m.record_execution("long.1", 5.0, cold=False)
    p = SJFPolicy(m)
    assert p.priority(inv("short"), True) < p.priority(inv("long"), True)


def test_sjf_uses_cold_time_without_warm_container():
    m = CharacteristicsMap()
    m.record_execution("f.1", 0.1, cold=False)
    m.record_execution("f.1", 2.0, cold=True)
    p = SJFPolicy(m)
    assert p.priority(inv("f"), warm_available=False) == pytest.approx(2.0)
    assert p.priority(inv("f"), warm_available=True) == pytest.approx(0.1)


def test_unseen_function_gets_zero_priority():
    p = SJFPolicy(CharacteristicsMap())
    assert p.priority(inv("new"), True) == 0.0


def test_eedf_is_arrival_plus_exec():
    m = CharacteristicsMap()
    m.record_execution("f.1", 1.0, cold=False)
    p = EEDFPolicy(m)
    assert p.priority(inv("f", arrival=10.0), True) == pytest.approx(11.0)


def test_rare_prioritizes_high_iat():
    m = CharacteristicsMap()
    a = m.get("common.1")
    for t in [0.0, 1.0, 2.0]:
        a.record_arrival(t)
    b = m.get("rare.1")
    for t in [0.0, 100.0]:
        b.record_arrival(t)
    p = RAREPolicy(m)
    assert p.priority(inv("rare"), True) < p.priority(inv("common"), True)


def test_make_queue_policy_factory():
    m = CharacteristicsMap()
    assert isinstance(make_queue_policy("fcfs", m), FCFSPolicy)
    assert isinstance(make_queue_policy("FIFO", m), FCFSPolicy)
    assert isinstance(make_queue_policy("eedf", m), EEDFPolicy)
    with pytest.raises(ValueError):
        make_queue_policy("lifo", m)


# ------------------------------------------------------------------ bypass
def test_no_bypass_never():
    assert not NoBypass().should_bypass(inv(), True)


def test_short_function_bypass_criteria():
    m = CharacteristicsMap()
    m.record_execution("f.1", 0.05, cold=False)
    load = LoadTracker(cores=10)
    bp = ShortFunctionBypass(m, load, duration_threshold=0.1, load_limit=0.9)
    assert bp.should_bypass(inv("f"), warm_available=True)


def test_bypass_rejects_long_function():
    m = CharacteristicsMap()
    m.record_execution("f.1", 1.0, cold=False)
    load = LoadTracker(cores=10)
    bp = ShortFunctionBypass(m, load, duration_threshold=0.1)
    assert not bp.should_bypass(inv("f"), True)


def test_bypass_rejects_under_high_load():
    m = CharacteristicsMap()
    m.record_execution("f.1", 0.05, cold=False)
    load = LoadTracker(cores=10)
    load.loadavg = 9.5  # normalized 0.95 > 0.9
    bp = ShortFunctionBypass(m, load, duration_threshold=0.1, load_limit=0.9)
    assert not bp.should_bypass(inv("f"), True)


def test_bypass_rejects_without_execution_history():
    m = CharacteristicsMap()
    m.record_arrival("f.1", 0.0)  # arrival but no execution
    load = LoadTracker(cores=10)
    bp = ShortFunctionBypass(m, load)
    assert not bp.should_bypass(inv("f"), True)


def test_bypass_validation():
    m = CharacteristicsMap()
    load = LoadTracker(cores=10)
    with pytest.raises(ValueError):
        ShortFunctionBypass(m, load, duration_threshold=-1.0)
    with pytest.raises(ValueError):
        ShortFunctionBypass(m, load, load_limit=0.0)


# ------------------------------------------------------------ load tracker
def test_load_tracker_counts_running():
    lt = LoadTracker(cores=4)
    lt.on_start()
    lt.on_start()
    assert lt.running == 2
    lt.on_finish()
    assert lt.running == 1
    with pytest.raises(RuntimeError):
        lt.on_finish()
        lt.on_finish()


def test_load_tracker_ema_converges():
    lt = LoadTracker(cores=4, interval=5.0, horizon=60.0)
    for _ in range(4):
        lt.on_start()
    for _ in range(200):
        lt.sample()
    assert lt.loadavg == pytest.approx(4.0, rel=0.01)
    assert lt.normalized == pytest.approx(1.0, rel=0.01)


def test_load_tracker_validation():
    with pytest.raises(ValueError):
        LoadTracker(cores=0)
    with pytest.raises(ValueError):
        LoadTracker(cores=1, interval=0.0)


# --------------------------------------------------------------- regulator
def test_regulator_fixed_limit():
    env = Environment()
    reg = ConcurrencyRegulator(env, limit=3)
    assert reg.limit == 3
    assert reg.in_flight == 0
    with pytest.raises(ValueError):
        ConcurrencyRegulator(env, limit=0)


def test_aimd_config_validation():
    with pytest.raises(ValueError):
        AIMDConfig(min_limit=0)
    with pytest.raises(ValueError):
        AIMDConfig(multiplicative_decrease=1.0)
    with pytest.raises(ValueError):
        AIMDConfig(min_limit=10, max_limit=5)


def test_aimd_additive_increase_when_idle():
    env = Environment()
    load = LoadTracker(cores=4)
    cfg = AIMDConfig(adjust_interval=1.0, max_limit=10)
    reg = ConcurrencyRegulator(env, limit=2, load=load, aimd=cfg)
    env.process(reg.controller())
    env.run(until=5.5)
    reg.stop()
    assert reg.limit == 7  # +1 per interval, 5 intervals


def test_aimd_multiplicative_decrease_under_congestion():
    env = Environment()
    load = LoadTracker(cores=4)
    load.loadavg = 8.0  # normalized 2.0 > threshold 1.0
    cfg = AIMDConfig(adjust_interval=1.0, multiplicative_decrease=0.5)
    reg = ConcurrencyRegulator(env, limit=16, load=load, aimd=cfg)
    env.process(reg.controller())
    env.run(until=2.5)
    reg.stop()
    assert reg.limit == 4  # 16 -> 8 -> 4


def test_aimd_respects_min_limit():
    env = Environment()
    load = LoadTracker(cores=4)
    load.loadavg = 100.0
    cfg = AIMDConfig(adjust_interval=1.0, min_limit=2)
    reg = ConcurrencyRegulator(env, limit=4, load=load, aimd=cfg)
    env.process(reg.controller())
    env.run(until=10.0)
    reg.stop()
    assert reg.limit == 2


def test_controller_requires_config():
    env = Environment()
    reg = ConcurrencyRegulator(env, limit=4)
    with pytest.raises(RuntimeError):
        next(reg.controller())


def test_limit_history_recorded():
    env = Environment()
    load = LoadTracker(cores=4)
    cfg = AIMDConfig(adjust_interval=1.0)
    reg = ConcurrencyRegulator(env, limit=1, load=load, aimd=cfg)
    env.process(reg.controller())
    env.run(until=3.5)
    reg.stop()
    assert len(reg.limit_history) == 4  # initial + 3 increases
