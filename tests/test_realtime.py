"""Tests for the wall-clock (live) execution mode."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.realtime import RealtimeEnvironment


class FakeClock:
    """Deterministic wall clock: sleep() advances it exactly."""

    def __init__(self):
        self.now = 100.0
        self.sleeps: list[float] = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def make_env(**kwargs):
    fake = FakeClock()
    env = RealtimeEnvironment(sleep=fake.sleep, clock=fake.clock, **kwargs)
    return env, fake


def test_sleeps_until_event_deadlines():
    env, fake = make_env()

    def proc():
        yield env.timeout(2.0)
        yield env.timeout(3.0)

    env.process(proc())
    env.run()
    assert env.now == 5.0
    assert sum(fake.sleeps) == pytest.approx(5.0)


def test_factor_scales_wall_time():
    env, fake = make_env(factor=0.1)

    def proc():
        yield env.timeout(10.0)

    env.process(proc())
    env.run()
    assert env.now == 10.0
    assert sum(fake.sleeps) == pytest.approx(1.0)  # 10 sim s at 10x speed


def test_behind_schedule_executes_immediately_and_tracks_lag():
    env, fake = make_env()

    def slow_handler():
        yield env.timeout(1.0)
        fake.now += 5.0  # the handler itself burns 5 wall seconds
        yield env.timeout(1.0)  # now 5 s behind schedule

    env.process(slow_handler())
    env.run()
    assert env.max_lag >= 4.0


def test_strict_mode_raises_on_lag():
    env, fake = make_env(strict=True, tolerance=0.5)

    def slow_handler():
        yield env.timeout(1.0)
        fake.now += 5.0
        yield env.timeout(1.0)

    env.process(slow_handler())
    with pytest.raises(SimulationError, match="behind the wall clock"):
        env.run()


def test_same_calendar_same_results_as_des():
    """The realtime environment executes identical event orderings."""
    order_des, order_rt = [], []

    def workload(env, order):
        def client(i, delay):
            yield env.timeout(delay)
            order.append((i, env.now))

        for i, d in enumerate([0.3, 0.1, 0.2]):
            env.process(client(i, d))

    des = Environment()
    workload(des, order_des)
    des.run()

    rt, _fake = make_env(factor=0.001)
    workload(rt, order_rt)
    rt.run()

    assert order_des == order_rt


def test_validation():
    with pytest.raises(ValueError):
        RealtimeEnvironment(factor=0.0)
    with pytest.raises(ValueError):
        RealtimeEnvironment(tolerance=-1.0)


def test_sync_reanchors():
    env, fake = make_env()
    env.timeout(1.0)
    env.run()
    fake.now += 50.0  # wall time passes while the sim is idle
    env.sync()        # re-anchor so the next event is not "late"

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert env.max_lag < 0.5


def test_realtime_smoke_with_actual_clock():
    """A tiny run against the real clock (fast factor, bounded duration)."""
    env = RealtimeEnvironment(factor=0.001)

    def proc():
        yield env.timeout(5.0)
        return "done"

    assert env.run_process(proc()) == "done"
