"""Tests for reuse distances and hit-ratio curves."""

import numpy as np
import pytest

from repro.keepalive.reuse import (
    hit_ratio_curve,
    recommend_cache_size,
    reuse_distances,
)
from repro.keepalive.simulator import simulate
from repro.trace.model import Trace, TraceFunction


def make_trace(names_sequence, memories, warm=0.01):
    """Trace from an access string: e.g. 'abca' over functions a,b,c."""
    unique = sorted(set(names_sequence))
    functions = [
        TraceFunction(name=u, memory_mb=memories[u], warm_time=warm,
                      cold_time=warm * 2)
        for u in unique
    ]
    index = {u: i for i, u in enumerate(unique)}
    # Space accesses far enough apart that containers are idle on reuse.
    ts = np.arange(len(names_sequence)) * 10.0
    idx = np.array([index[c] for c in names_sequence], dtype=np.int64)
    return Trace(functions, ts, idx, duration=ts[-1] + 10.0)


def test_first_access_is_infinite():
    tr = make_trace("abc", {"a": 10, "b": 10, "c": 10})
    d = reuse_distances(tr)
    assert np.all(np.isinf(d))


def test_immediate_reuse_distance_zero():
    tr = make_trace("aa", {"a": 10})
    d = reuse_distances(tr)
    assert np.isinf(d[0])
    assert d[1] == 0.0


def test_distance_counts_distinct_memory():
    # a b c a: between the two a's, b and c were touched (10 + 30 MB).
    tr = make_trace("abca", {"a": 5, "b": 10, "c": 30})
    d = reuse_distances(tr)
    assert d[3] == pytest.approx(40.0)


def test_distance_ignores_duplicates():
    # a b b b a: only b's 10 MB counts once.
    tr = make_trace("abbba", {"a": 5, "b": 10})
    d = reuse_distances(tr)
    assert d[4] == pytest.approx(10.0)


def test_hrc_monotone_and_bounded():
    rng = np.random.default_rng(0)
    seq = "".join(rng.choice(list("abcdefgh"), size=500))
    tr = make_trace(seq, {c: 50 + 10 * i for i, c in enumerate("abcdefgh")})
    curve = hit_ratio_curve(tr)
    assert np.all(np.diff(curve.hit_ratios) >= -1e-12)
    assert curve.hit_ratios.max() <= 1.0
    assert 0 < curve.compulsory_miss_ratio < 1


def test_hrc_predicts_lru_simulation():
    """The HRC's warm ratio matches the LRU keep-alive simulator."""
    rng = np.random.default_rng(1)
    seq = "".join(rng.choice(list("abcdef"), size=400, p=[0.4, 0.2, 0.15,
                                                          0.1, 0.1, 0.05]))
    memories = {c: 64.0 for c in "abcdef"}
    tr = make_trace(seq, memories)
    curve = hit_ratio_curve(tr)
    for size in (128.0, 192.0, 256.0, 384.0):
        predicted_cold = curve.cold_ratio_at(size)
        simulated = simulate(tr, "LRU", size).cold_ratio
        assert simulated == pytest.approx(predicted_cold, abs=0.03), size


def test_size_for_hit_ratio():
    tr = make_trace("ababab", {"a": 100, "b": 100})
    curve = hit_ratio_curve(tr, sizes_mb=[0, 100, 200, 400])
    # Hits need a + b resident: 200 MB.
    assert curve.size_for_hit_ratio(0.5) == pytest.approx(200.0)
    assert curve.size_for_hit_ratio(0.99) is None  # compulsory misses
    with pytest.raises(ValueError):
        curve.size_for_hit_ratio(1.5)


def test_recommend_cache_size():
    rng = np.random.default_rng(2)
    seq = "".join(rng.choice(list("abcd"), size=300))
    tr = make_trace(seq, {c: 128.0 for c in "abcd"})
    size = recommend_cache_size(tr, target_cold_ratio=0.05)
    assert size is not None
    # Verify against the simulator: the recommended size meets the target.
    result = simulate(tr, "LRU", size)
    assert result.cold_ratio <= 0.05 + 0.02
    # Impossible targets (below compulsory misses) are rejected.
    assert recommend_cache_size(tr, target_cold_ratio=0.0) is None
    with pytest.raises(ValueError):
        recommend_cache_size(tr, target_cold_ratio=2.0)


def test_empty_trace():
    functions = [TraceFunction(name="f", memory_mb=10.0, warm_time=0.1,
                               cold_time=0.2)]
    tr = Trace(functions, np.empty(0), np.empty(0, dtype=np.int64),
               duration=1.0)
    assert reuse_distances(tr).size == 0
    curve = hit_ratio_curve(tr)
    assert np.all(curve.hit_ratios == 0)
