"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    assert env.run_process(proc()) == 5.0
    assert env.now == 5.0


def test_timeout_zero_delay_fires_at_same_time():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        value = yield env.timeout(1.0, value="payload")
        return value

    assert env.run_process(proc()) == "payload"


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(waiter(3.0, "c"))
    env.process(waiter(1.0, "a"))
    env.process(waiter(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abcde":
        env.process(waiter(label))
    env.run()
    assert order == list("abcde")


def test_run_until_stops_clock_at_limit():
    env = Environment()

    def proc():
        yield env.timeout(100.0)

    env.process(proc())
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_manual_event_succeed():
    env = Environment()
    evt = env.event()
    results = []

    def waiter():
        value = yield evt
        results.append(value)

    def trigger():
        yield env.timeout(2.0)
        evt.succeed("done")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == ["done"]


def test_event_double_trigger_raises():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_propagates_to_waiter():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter():
        try:
            yield evt
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1.0)
        evt.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    evt = env.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 99

    def parent():
        value = yield env.process(child())
        return value

    assert env.run_process(parent()) == 99


def test_waiting_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "early"

    def parent(proc):
        yield env.timeout(10.0)
        value = yield proc
        return value, env.now

    child_proc = env.process(child())
    assert env.run_process(parent(child_proc)) == ("early", 10.0)


def test_uncaught_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("broken process")

    env.process(bad())
    with pytest.raises(ValueError, match="broken process"):
        env.run()


def test_waited_on_process_failure_delivered_to_parent():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield env.process(bad())
        except ValueError:
            return "handled"

    assert env.run_process(parent()) == "handled"


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    result = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            result.append((env.now, exc.cause))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt(cause="wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert result == [(3.0, "wake up")]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        results = yield env.all_of([t1, t2])
        return env.now, sorted(results.values())

    assert env.run_process(proc()) == (5.0, ["a", "b"])


def test_any_of_returns_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield env.any_of([t1, t2])
        return env.now, list(results.values())

    assert env.run_process(proc()) == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    assert env.run_process(proc()) == 0.0


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_process_unfinished_raises():
    env = Environment()

    def forever():
        yield env.timeout(1000.0)

    with pytest.raises(SimulationError):
        env.run_process(forever(), until=1.0)


def test_nested_processes_three_deep():
    env = Environment()

    def leaf():
        yield env.timeout(2.0)
        return 1

    def middle():
        value = yield env.process(leaf())
        yield env.timeout(3.0)
        return value + 1

    def root():
        value = yield env.process(middle())
        return value + 1

    assert env.run_process(root()) == 3
    assert env.now == 5.0


def test_many_processes_scale():
    env = Environment()
    done = []

    def worker(i):
        yield env.timeout(float(i % 17))
        done.append(i)

    for i in range(1000):
        env.process(worker(i))
    env.run()
    assert len(done) == 1000


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_large_fanin_detaches_all_waiters():
    # Many processes wait on ONE shared event; interrupting them all must
    # detach each waiter (tombstone swap) without disturbing the others.
    env = Environment()
    gate = env.event()
    interrupted = []

    def waiter(i):
        try:
            yield gate
            interrupted.append((i, "resumed"))
        except Interrupt as exc:
            interrupted.append((i, exc.cause))

    procs = [env.process(waiter(i)) for i in range(50)]

    def interrupter():
        yield env.timeout(1.0)
        for k, p in enumerate(procs):
            if k % 2 == 0:
                p.interrupt(cause=k)

    env.process(interrupter())
    env.process(_release(env, gate))
    env.run()
    resumed = [i for i, tag in interrupted if tag == "resumed"]
    hit = sorted(i for i, tag in interrupted if tag != "resumed")
    assert hit == list(range(0, 50, 2))
    assert sorted(resumed) == list(range(1, 50, 2))


def _release(env, gate):
    yield env.timeout(2.0)
    gate.succeed()


def test_failed_event_with_only_tombstoned_waiters_still_propagates():
    # An interrupted process leaves a tombstone in the event's callback
    # list; if the event later fails with nobody real waiting, the
    # failure must still propagate out of run() (no silent failure).
    env = Environment()
    doomed = env.event()

    def waiter():
        try:
            yield doomed
        except Interrupt:
            yield env.timeout(100.0)

    proc = env.process(waiter())

    def driver():
        yield env.timeout(1.0)
        proc.interrupt()
        yield env.timeout(1.0)
        doomed.fail(RuntimeError("orphan failure"))

    env.process(driver())
    with pytest.raises(RuntimeError, match="orphan failure"):
        env.run()


def test_interrupt_twice_is_idempotent_on_callbacks():
    env = Environment()
    causes = []

    def waiter():
        while True:
            try:
                yield env.timeout(100.0)
                return
            except Interrupt as exc:
                causes.append(exc.cause)

    proc = env.process(waiter())

    def driver():
        yield env.timeout(1.0)
        proc.interrupt(cause="a")
        proc.interrupt(cause="b")

    env.process(driver())
    env.run(until=50.0)
    assert causes == ["a", "b"]
