"""Unit tests for repro.sim.resources."""

import pytest

from repro.sim import Environment, Gauge, PriorityStore, Resource, SimulationError, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    held = []

    def user(i):
        req = res.request()
        yield req
        held.append((env.now, i))
        yield env.timeout(10.0)
        res.release(req)

    for i in range(4):
        env.process(user(i))
    env.run()
    # First two granted at t=0, next two at t=10.
    assert [t for t, _ in held] == [0.0, 0.0, 10.0, 10.0]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1.0)
        res.release(req)

    for i in range(5):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_unknown_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    other = Resource(env, capacity=1)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def canceller():
        yield env.timeout(1.0)
        req = res.request()  # queued behind holder
        res.release(req)  # cancel before grant
        assert res.queue_length == 0

    env.process(holder())
    env.process(canceller())
    env.run()


def test_resource_grow_capacity_unblocks_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def user(i):
        req = res.request()
        yield req
        grants.append((env.now, i))
        yield env.timeout(100.0)
        res.release(req)

    def grower():
        yield env.timeout(2.0)
        res.set_capacity(3)

    for i in range(3):
        env.process(user(i))
    env.process(grower())
    env.run()
    assert grants == [(0.0, 0), (2.0, 1), (2.0, 2)]


def test_resource_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10.0)
        res.release(req)

    def observer():
        yield env.timeout(1.0)
        res.request()
        assert res.count == 1
        assert res.queue_length == 1

    env.process(holder())
    env.process(observer())
    env.run()


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        item = yield store.get()
        times.append((env.now, item))

    def producer():
        yield env.timeout(4.0)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [(4.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    puts = []

    def producer():
        yield store.put("a")
        puts.append(env.now)
        yield store.put("b")
        puts.append(env.now)

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert puts == [0.0, 5.0]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("v")
    env.run()
    ok, item = store.try_get()
    assert ok and item == "v"


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# ---------------------------------------------------------------- PriorityStore
def test_priority_store_orders_by_key():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def run():
        yield store.put("low", priority=10)
        yield store.put("high", priority=1)
        yield store.put("mid", priority=5)
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(run())
    env.run()
    assert got == ["high", "mid", "low"]


def test_priority_store_fifo_within_priority():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def run():
        for label in ["a", "b", "c"]:
            yield store.put(label, priority=1)
        for _ in range(3):
            got.append((yield store.get()))

    env.process(run())
    env.run()
    assert got == ["a", "b", "c"]


def test_priority_store_remove_predicate():
    env = Environment()
    store = PriorityStore(env)

    def run():
        for i in range(6):
            yield store.put(i, priority=i)

    env.process(run())
    env.run()
    removed = store.remove(lambda x: x % 2 == 0)
    assert sorted(removed) == [0, 2, 4]
    assert store.items == [1, 3, 5]


def test_priority_store_len_and_items_sorted():
    env = Environment()
    store = PriorityStore(env)

    def run():
        yield store.put("z", priority=3)
        yield store.put("a", priority=1)

    env.process(run())
    env.run()
    assert len(store) == 2
    assert store.items == ["a", "z"]


# ---------------------------------------------------------------- Gauge
def test_gauge_take_give_levels():
    env = Environment()
    g = Gauge(env, capacity=100.0)
    assert g.level == 100.0
    assert g.try_take(30.0)
    assert g.level == 70.0
    assert g.in_use == 30.0
    g.give(10.0)
    assert g.level == 80.0


def test_gauge_give_clamps_at_capacity():
    env = Environment()
    g = Gauge(env, capacity=50.0)
    g.give(1000.0)
    assert g.level == 50.0


def test_gauge_take_blocks_until_available():
    env = Environment()
    g = Gauge(env, capacity=10.0)
    times = []

    def taker():
        assert g.try_take(10.0)
        yield env.timeout(3.0)
        g.give(10.0)

    def waiter():
        yield g.take(5.0)
        times.append(env.now)

    env.process(taker())
    env.process(waiter())
    env.run()
    assert times == [3.0]


def test_gauge_fifo_no_small_request_overtake():
    env = Environment()
    g = Gauge(env, capacity=10.0)
    order = []

    def setup():
        assert g.try_take(8.0)
        yield env.timeout(1.0)
        g.give(8.0)

    def big():
        yield g.take(9.0)
        order.append("big")
        g.give(9.0)

    def small():
        yield env.timeout(0.5)  # arrives after big is queued
        yield g.take(1.0)
        order.append("small")

    env.process(setup())
    env.process(big())
    env.process(small())
    env.run()
    assert order == ["big", "small"]


def test_gauge_take_exceeding_capacity_raises():
    env = Environment()
    g = Gauge(env, capacity=10.0)
    with pytest.raises(ValueError):
        g.take(11.0)


def test_gauge_shrink_capacity_blocks_new_takes():
    env = Environment()
    g = Gauge(env, capacity=100.0)
    assert g.try_take(90.0)
    g.set_capacity(50.0)
    assert g.level == pytest.approx(-40.0)
    assert not g.try_take(1.0)
    g.give(45.0)
    assert g.try_take(5.0)


def test_gauge_initial_level():
    env = Environment()
    g = Gauge(env, capacity=100.0, initial=20.0)
    assert g.level == 20.0
    with pytest.raises(ValueError):
        Gauge(env, capacity=10.0, initial=20.0)


def test_gauge_negative_amounts_rejected():
    env = Environment()
    g = Gauge(env, capacity=10.0)
    with pytest.raises(ValueError):
        g.try_take(-1.0)
    with pytest.raises(ValueError):
        g.give(-1.0)
    with pytest.raises(ValueError):
        g.take(-1.0)
