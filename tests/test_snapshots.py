"""Tests for snapshot-accelerated cold starts."""

import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.containers.snapshots import Snapshot, SnapshotPolicy, SnapshotStore


REG = FunctionRegistration(name="f", memory_mb=512.0, warm_time=0.2,
                           cold_time=3.0)


# ------------------------------------------------------------------- store
def test_policy_validation():
    with pytest.raises(ValueError):
        SnapshotPolicy(restore_base=-1.0)
    with pytest.raises(ValueError):
        SnapshotPolicy(init_coverage=1.5)


def test_policy_latencies_scale_with_memory():
    p = SnapshotPolicy(restore_base=0.05, restore_s_per_gb=0.2)
    assert p.restore_latency(1024.0) == pytest.approx(0.25)
    assert p.restore_latency(0.0) == pytest.approx(0.05)
    assert p.capture_latency(1024.0) > p.capture_latency(128.0)


def test_store_capture_and_restore_plan():
    store = SnapshotStore()
    assert store.restore_plan(REG) is None
    store.capture(REG, now=1.0)
    assert store.has("f.1")
    plan = store.restore_plan(REG)
    assert plan is not None
    restore_latency, remaining_init = plan
    assert restore_latency > 0
    assert remaining_init == pytest.approx(0.0)  # full coverage default
    assert store.restores == 1


def test_store_partial_coverage():
    store = SnapshotStore(SnapshotPolicy(init_coverage=0.5))
    store.capture(REG, now=0.0)
    _lat, remaining = store.restore_plan(REG)
    assert remaining == pytest.approx(REG.init_time * 0.5)


def test_store_disabled_is_inert():
    store = SnapshotStore(enabled=False)
    assert store.capture(REG, now=0.0) == 0.0
    assert not store.has("f.1")
    assert store.restore_plan(REG) is None


def test_store_capture_idempotent_and_invalidate():
    store = SnapshotStore()
    store.capture(REG, now=0.0)
    store.capture(REG, now=5.0)
    assert store.captures == 1
    store.invalidate("f.1")
    assert not store.has("f.1")


# ------------------------------------------------------------------ worker
def _worker(snapshots: bool):
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            backend="containerd",
            cores=4,
            memory_mb=4096.0,
            snapshots_enabled=snapshots,
            # Tiny keep-alive so repeat invocations cold-start again.
            keepalive_policy="TTL",
            bypass_enabled=False,
        ),
    )
    worker.start()
    worker.register_sync(REG)
    return env, worker


def _cold_roundtrip(env, worker):
    inv = env.run_process(worker.invoke("f.1"))
    assert inv.cold
    # Evict the warm container so the next invocation is cold again.
    worker.pool.evict_for(10_000.0)
    env.run(until=env.now + 10.0)  # capture + destroy settle
    return inv


def test_snapshot_speeds_up_repeat_cold_starts():
    env, worker = _worker(snapshots=True)
    first = _cold_roundtrip(env, worker)
    second = _cold_roundtrip(env, worker)
    assert worker.snapshots.has("f.1")
    assert worker.metrics.count("containers.restored") >= 1
    # Restore skips the container build and the function initialization.
    assert second.e2e_time < first.e2e_time / 2
    assert second.cold  # still accounted as a cold start


def test_snapshots_disabled_no_speedup():
    env, worker = _worker(snapshots=False)
    first = _cold_roundtrip(env, worker)
    second = _cold_roundtrip(env, worker)
    assert worker.metrics.count("containers.restored") == 0
    assert second.e2e_time > first.e2e_time / 2


def test_capture_happens_off_critical_path():
    env, worker = _worker(snapshots=True)
    inv = env.run_process(worker.invoke("f.1"))
    # The first cold invocation completes before the capture lands.
    assert not worker.snapshots.has("f.1") or inv.completed_at is not None
    env.run(until=env.now + 10.0)
    assert worker.snapshots.has("f.1")
