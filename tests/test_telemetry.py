"""Tests for the telemetry pipeline: histograms, sampler, decomposition,
exporters, run directories and the inspect CLI."""

import json
import math
import re

import pytest

from repro.cli import main
from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.core.worker import Worker
from repro.loadbalancer.cluster import Cluster
from repro.metrics import LATENCY_HISTOGRAMS, LogHistogram, MetricsRegistry
from repro.metrics.registry import InvocationRecord, Outcome
from repro.sim.core import Environment
from repro.telemetry import (
    PHASES,
    Telemetry,
    TelemetryConfig,
    TelemetrySampler,
    Timeseries,
    decompose,
    dump_timeseries_csv,
    inspect_report,
    load_run,
    match_records,
    render_prometheus,
)

REG = FunctionRegistration(name="f", memory_mb=128, warm_time=0.1, cold_time=0.5)


def _run_worker(n_invocations=3, telemetry_config=None, until=30.0):
    """One worker, sequential invocations, optional telemetry attached."""
    env = Environment()
    worker = Worker(env, WorkerConfig(cores=2, memory_mb=4096))
    telemetry = None
    if telemetry_config is not None:
        telemetry = Telemetry(env, telemetry_config)
        telemetry.attach_worker(worker)
        telemetry.start()
    worker.start()
    worker.register_sync(REG)

    def drive():
        for _ in range(n_invocations):
            yield from worker.invoke(REG.fqdn())

    env.process(drive(), name="drive")
    env.run(until=until)
    if telemetry is not None:
        telemetry.stop()
    return worker, telemetry


# ---------------------------------------------------------------- histogram
def test_histogram_bucket_semantics():
    h = LogHistogram(lo=0.001, hi=10.0, buckets_per_decade=1)
    # bounds = [0.001, 0.01, 0.1, 1.0, 10.0]; zero lands in bucket 0.
    h.observe(0.0)
    h.observe(0.001)     # == bounds[0] -> bucket 0
    h.observe(0.005)     # (0.001, 0.01] -> bucket 1
    h.observe(100.0)     # overflow
    assert h.count == 4
    assert h.counts[0] == 2
    assert h.counts[1] == 1
    assert h.counts[-1] == 1
    assert h.minimum == 0.0 and h.maximum == 100.0


def test_histogram_rejects_bad_samples():
    h = LogHistogram()
    with pytest.raises(ValueError):
        h.observe(-1.0)
    with pytest.raises(ValueError):
        h.observe(float("nan"))


def test_histogram_validation():
    with pytest.raises(ValueError):
        LogHistogram(lo=0.0)
    with pytest.raises(ValueError):
        LogHistogram(lo=1.0, hi=0.5)
    with pytest.raises(ValueError):
        LogHistogram(buckets_per_decade=0)
    h = LogHistogram()
    with pytest.raises(ValueError):
        h.quantile(101)
    assert math.isnan(h.quantile(50))


def test_histogram_quantiles_bounded_by_bucket():
    h = LogHistogram(lo=1e-4, hi=1e3, buckets_per_decade=10)
    # Stays within [lo, hi]: in-range samples get the one-bucket guarantee
    # (the overflow bucket is only bounded by the observed max).
    samples = [0.01 * 1.07**i for i in range(150)]
    for s in samples:
        h.observe(s)
    samples.sort()
    for q in (50, 90, 99, 100):
        rank = max(1, math.ceil(q / 100 * len(samples)))
        exact = samples[rank - 1]
        est = h.quantile(q)
        # Estimate within one geometric bucket of the exact quantile.
        assert exact / h.growth <= est <= exact * h.growth
    assert h.quantile(100) == pytest.approx(h.maximum)


def test_histogram_merge():
    a, b = LogHistogram(), LogHistogram()
    for v in (0.1, 0.2):
        a.observe(v)
    for v in (0.4, 0.8):
        b.observe(v)
    a.merge(b)
    assert a.count == 4
    assert a.total == pytest.approx(1.5)
    assert a.maximum == 0.8
    with pytest.raises(ValueError):
        a.merge(LogHistogram(lo=1e-3))


def test_histogram_merge_mismatch_names_both_geometries():
    # The error must say *how* the shapes differ — base, offset, bound
    # count — so a failed shard merge is diagnosable from the message.
    with pytest.raises(ValueError, match=r"offset 1e-05 vs 0\.001"):
        LogHistogram().merge(LogHistogram(lo=1e-3))
    with pytest.raises(ValueError, match=r"base .* vs .*bounds"):
        LogHistogram().merge(LogHistogram(buckets_per_decade=5))


def test_histogram_merge_empty_is_identity():
    h = LogHistogram()
    for v in (0.05, 0.2, 1.5):
        h.observe(v)
    counts = list(h.counts)
    h.merge(LogHistogram())          # populated <- empty: no-op
    assert h.counts == counts
    assert (h.count, h.minimum, h.maximum) == (3, 0.05, 1.5)
    empty = LogHistogram()
    empty.merge(h)                   # empty <- populated: full copy
    assert empty.counts == h.counts
    assert (empty.count, empty.minimum, empty.maximum) == (3, 0.05, 1.5)


def test_histogram_quantile_after_merge_matches_single_stream():
    samples = [0.01 * (i + 1) for i in range(50)] + [2.0, 5.0, 9.0]
    whole = LogHistogram()
    for v in samples:
        whole.observe(v)
    a, b = LogHistogram(), LogHistogram()
    for i, v in enumerate(samples):
        (a if i % 2 else b).observe(v)
    a.merge(b)
    assert a.counts == whole.counts
    for q in (0, 50, 90, 99, 100):
        assert a.quantile(q) == whole.quantile(q)


def test_histogram_cumulative_and_reset():
    h = LogHistogram(lo=0.1, hi=10.0, buckets_per_decade=1)
    h.observe(0.5)
    pairs = list(h.cumulative())
    assert pairs[-1] == (float("inf"), 1)
    cums = [c for _, c in pairs]
    assert cums == sorted(cums)  # cumulative counts are monotone
    h.reset()
    assert h.count == 0 and h.maximum is None


def test_registry_latency_histograms_opt_in():
    reg = MetricsRegistry()
    rec = InvocationRecord(
        function="f", arrival=0.0, outcome=Outcome.WARM,
        exec_time=0.1, e2e_time=0.15, queue_time=0.02, overhead=0.05,
    )
    reg.record_invocation(rec)
    assert reg.histograms == {}  # off by default: nothing allocated
    reg.enable_latency_histograms()
    reg.record_invocation(rec)
    reg.record_invocation(
        InvocationRecord(function="f", arrival=0.0, outcome=Outcome.DROPPED)
    )
    for name in LATENCY_HISTOGRAMS:
        assert reg.histograms[name].count == 1  # drop not observed
    assert reg.histograms["e2e_seconds"].maximum == pytest.approx(0.15)
    reg.reset()
    assert reg.latency_histograms_enabled  # survives reset, empty again
    assert all(reg.histograms[n].count == 0 for n in LATENCY_HISTOGRAMS)


# --------------------------------------------------------------- timeseries
def test_timeseries_append_and_rows():
    ts = Timeseries(("t", "x"))
    ts.append(0.0, 1)
    ts.append(1.0, 2)
    assert len(ts) == 2
    assert ts.column("x") == [1, 2]
    assert list(ts.rows()) == [{"t": 0.0, "x": 1}, {"t": 1.0, "x": 2}]
    with pytest.raises(ValueError):
        ts.append(2.0)
    with pytest.raises(ValueError):
        Timeseries(())
    with pytest.raises(ValueError):
        Timeseries(("a", "a"))


def test_telemetry_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(interval=0.0)
    with pytest.raises(ValueError):
        TelemetrySampler(Environment(), interval=-1.0)


# ------------------------------------------------------------------ sampler
def test_sampler_snapshots_on_grid():
    worker, telemetry = _run_worker(
        n_invocations=3, telemetry_config=TelemetryConfig(interval=1.0)
    )
    ts = telemetry.series[worker.name]
    assert set(ts.columns) == {
        "t", "queue_depth", "running", "warm_containers",
        "in_use_containers", "memory_used_mb", "busy_cores",
    }
    times = ts.column("t")
    assert times == [float(i) for i in range(1, len(times) + 1)]
    assert telemetry.sampler.samples == len(times)
    # The warm container parked after the run shows up in the tail samples.
    assert ts.column("warm_containers")[-1] == 1
    assert ts.column("memory_used_mb")[-1] == pytest.approx(128.0)


def test_sampler_energy_columns_opt_in():
    worker, telemetry = _run_worker(
        n_invocations=2,
        telemetry_config=TelemetryConfig(interval=1.0, sample_energy=True),
    )
    ts = telemetry.series[worker.name]
    assert "power_w" in ts.columns and "energy_j" in ts.columns
    energy = ts.column("energy_j")
    assert energy == sorted(energy)  # energy is non-decreasing
    assert energy[-1] > 0.0
    # Sampling must not have perturbed the monitor's own integration.
    assert worker.energy.joules_at(telemetry.env.now) >= energy[-1]


def test_sampler_double_start_and_duplicate_worker_rejected():
    env = Environment()
    worker = Worker(env, WorkerConfig())
    sampler = TelemetrySampler(env, interval=1.0)
    sampler.attach_worker(worker)
    with pytest.raises(ValueError):
        sampler.attach_worker(worker)
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()


# ------------------------------------------------------------ decomposition
def test_decomposition_phases_sum_to_recorded_overhead():
    worker, telemetry = _run_worker(
        n_invocations=4, telemetry_config=TelemetryConfig()
    )
    records = [r for r in telemetry.records()]
    breakdowns = telemetry.breakdowns()
    assert len(breakdowns) == 4
    assert breakdowns[0].cold and not breakdowns[1].cold
    by_id = {b.invocation_id: b for b in breakdowns}
    for rec in records:
        b = by_id[rec.invocation_id]
        assert b.overhead == pytest.approx(rec.overhead, abs=1e-9)
        assert b.exec_time == pytest.approx(rec.exec_time)
        assert set(b.phases) == set(PHASES)
    matched, compared = match_records(breakdowns, records)
    assert (matched, compared) == (4, 4)


def test_decomposition_skips_untagged_and_execless_groups():
    from repro.metrics.spans import Span

    spans = [
        Span("invoke", 0.0, 0.1, tag=None),          # untagged -> ignored
        Span("lb_pick", 0.0, 0.1, tag="fn-fqdn"),    # no exec span -> skipped
        Span("invoke", 0.0, 0.1, tag="7"),
        Span("exec", 0.1, 0.3, tag="7"),
        Span("weird_component", 0.3, 0.4, tag="7"),  # unknown -> "other"
    ]
    out = decompose(spans)
    assert len(out) == 1
    b = out[0]
    assert b.invocation_id == 7
    assert b.phases["queue"] == pytest.approx(0.1)
    assert b.phases["other"] == pytest.approx(0.1)
    assert b.exec_time == pytest.approx(0.2)


def test_decomposition_counts_queue_wait_gap():
    from repro.metrics.spans import Span

    spans = [
        Span("add_item_to_q", 0.0, 0.1, tag="1"),
        Span("dequeue", 0.6, 0.7, tag="1"),  # 0.5 s waiting in queue
        Span("exec", 0.7, 1.0, tag="1"),
    ]
    b = decompose(spans)[0]
    assert b.phases["queue"] == pytest.approx(0.1 + 0.1 + 0.5)


# -------------------------------------------------------------- exporters
def test_timeseries_csv_round_trip(tmp_path):
    ts = Timeseries(("t", "v"))
    ts.append(0.0, 1.5)
    ts.append(1.0, 2.5)
    path = tmp_path / "ts.csv"
    assert dump_timeseries_csv(ts, path) == 2
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "t,v"
    assert lines[1] == "0.0,1.5"


PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r"[0-9eE+.\-]+|[+-]Inf|NaN$"
)


def test_prometheus_rendering_parses():
    reg = MetricsRegistry()
    reg.incr("scheduler.bypass", 3)
    reg.set_gauge("pool.memory-used", 42.5)
    reg.enable_latency_histograms()
    reg.record_invocation(
        InvocationRecord(
            function="f", arrival=0.0, outcome=Outcome.WARM,
            exec_time=0.1, e2e_time=0.15, queue_time=0.02, overhead=0.05,
        )
    )
    text = render_prometheus(reg)
    assert text.endswith("\n")
    lines = text.splitlines()
    for line in lines:
        if not line or line.startswith("#"):
            continue
        assert PROM_LINE.match(line), f"bad exposition line: {line!r}"
    assert "repro_scheduler_bypass_total 3" in lines
    assert "repro_pool_memory_used 42.5" in lines
    # Histogram family: buckets, +Inf closer, sum and count.
    assert any(
        line.startswith("repro_e2e_seconds_bucket{le=") for line in lines
    )
    assert 'repro_e2e_seconds_bucket{le="+Inf"} 1' in lines
    assert "repro_e2e_seconds_count 1" in lines
    # TYPE declarations for all three metric kinds.
    joined = "\n".join(lines)
    for kind in ("counter", "gauge", "histogram"):
        assert f" {kind}" in joined


# A strict model of the text exposition format: metric name, optional
# label set (escaped values), float value.  Stricter than PROM_LINE — it
# recovers the label values so escaping can be checked round-trip.
_STRICT_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\")*)\})?"
    r" (?P<value>[0-9eE+.\-]+|[+-]Inf|NaN)$"
)
_STRICT_LABEL = re.compile(
    r"([a-zA-Z_][a-zA-Z0-9_]*)=\"((?:[^\"\\\n]|\\[\\\"n])*)\"")


def _unescape_label(raw: str) -> str:
    out, i = [], 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            nxt = raw[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_exposition(text: str):
    """Parse exposition text strictly; returns (samples, helps, types)."""
    samples, helps, types = [], {}, {}
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, doc = line[len("# HELP "):].partition(" ")
            assert "\n" not in doc
            helps[name] = doc
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert kind in ("counter", "gauge", "histogram", "summary"), line
            types[name] = kind
            continue
        m = _STRICT_SAMPLE.match(line)
        assert m, f"malformed exposition line: {line!r}"
        labels = {
            k: _unescape_label(v)
            for k, v in _STRICT_LABEL.findall(m.group("labels") or "")
        }
        samples.append((m.group("name"), labels, m.group("value")))
    return samples, helps, types


def _family(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def test_escape_label_value_specials():
    from repro.telemetry import escape_label_value

    assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
    assert _unescape_label(escape_label_value('a\\b"c\nd')) == 'a\\b"c\nd'
    assert escape_label_value("plain") == "plain"


def test_registry_prometheus_conformance_round_trip():
    reg = MetricsRegistry()
    reg.incr("scheduler.bypass", 3)
    reg.set_gauge("pool.memory-used", 42.5)
    reg.enable_latency_histograms()
    reg.record_invocation(
        InvocationRecord(
            function="f", arrival=0.0, outcome=Outcome.WARM,
            exec_time=0.1, e2e_time=0.15, queue_time=0.02, overhead=0.05,
        )
    )
    samples, helps, types = _parse_exposition(render_prometheus(reg))
    assert samples
    # Every sample belongs to a family with both # HELP and # TYPE.
    for name, _, _ in samples:
        family = _family(name)
        assert family in types, name
        assert family in helps, name
    # Counter/gauge/histogram kinds land where expected.
    assert types["repro_scheduler_bypass_total"] == "counter"
    assert types["repro_pool_memory_used"] == "gauge"
    assert types["repro_e2e_seconds"] == "histogram"


def test_health_prometheus_conformance_and_label_escaping():
    from repro.health import HealthConfig
    from repro.telemetry import render_health_prometheus

    weird = 'fn"one\\two\nthree.1'
    config = HealthConfig(window=10.0, detectors=False)
    collector = config.collector()
    from repro.health import evaluate_health

    collector.observe(weird, 1.0, completed=True, e2e_time=0.5,
                      queue_time=0.1, overhead=0.2, worker="w-0")
    collector.observe("plain.1", 2.0, completed=True, e2e_time=1.5)
    report = evaluate_health(collector, config=config)
    text = render_health_prometheus(report.health)
    samples, helps, types = _parse_exposition(text)
    for name, _, _ in samples:
        assert name in types and name in helps, name
    # The weird function name survives the escape/parse round trip.
    fn_labels = {
        labels["function"] for name, labels, _ in samples
        if name == "repro_health_slo_violating_windows"
    }
    assert fn_labels == {weird, "plain.1"}
    quantiles = {
        labels["quantile"] for name, labels, _ in samples
        if name == "repro_health_e2e_seconds"
    }
    assert quantiles == {"0.5", "0.9", "0.99"}
    worker_samples = [
        labels for name, labels, _ in samples
        if name == "repro_health_queue_seconds"
    ]
    assert all(l["worker"] == "w-0" for l in worker_samples)


# ------------------------------------------------------ run dirs + inspect
def test_export_load_run_and_inspect(tmp_path):
    worker, telemetry = _run_worker(
        n_invocations=3,
        telemetry_config=TelemetryConfig(interval=1.0, sample_energy=True),
    )
    run_dir = tmp_path / "run"
    paths = telemetry.export(run_dir)
    assert sorted(p.name for p in paths.values()) == [
        "manifest.json", "metrics.prom", "records.jsonl", "spans.jsonl",
        "summary.json", "timeseries.jsonl",
    ]
    data = load_run(run_dir)
    assert len(data["records"]) == 3
    assert data["summary"]["invocations"] == 3
    assert data["summary"]["decomposition"]["matched_records"] == 3
    assert data["metrics_text"].startswith("# HELP")
    # Every timeseries row round-trips with its series name attached.
    assert all(row["series"] == worker.name for row in data["timeseries"])
    ts_row = data["timeseries"][0]
    assert "power_w" in ts_row and "queue_depth" in ts_row

    report = inspect_report(run_dir)
    assert "overhead decomposition" in report
    assert "phase sums match 3/3 records" in report
    assert "latency distributions" in report


def test_inspect_empty_dir(tmp_path):
    report = inspect_report(tmp_path)
    assert "no telemetry artifacts" in report


def test_records_jsonl_schema(tmp_path):
    _, telemetry = _run_worker(n_invocations=2, telemetry_config=TelemetryConfig())
    telemetry.export(tmp_path)
    with open(tmp_path / "records.jsonl") as fh:
        rows = [json.loads(line) for line in fh]
    assert len(rows) == 2
    assert rows[0]["outcome"] == "cold" and rows[1]["outcome"] == "warm"
    # IDs come from a global counter: positive, distinct, arrival-ordered.
    ids = [r["invocation_id"] for r in rows]
    assert all(i > 0 for i in ids) and ids == sorted(ids) and len(set(ids)) == 2
    assert rows[0]["e2e_time"] >= rows[0]["exec_time"]


# ------------------------------------------------------------- cluster + CLI
def test_cluster_telemetry_and_statusboard_publish(tmp_path):
    env = Environment()
    cluster = Cluster(
        env, num_workers=2,
        config=WorkerConfig(cores=2, memory_mb=4096),
        status_interval=5.0,
    )
    telemetry = Telemetry(env, TelemetryConfig(interval=1.0))
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    cluster.start()
    cluster.register_sync(REG)

    def drive():
        for _ in range(6):
            yield from cluster.invoke(REG.fqdn())

    env.process(drive(), name="drive")
    env.run(until=30.0)
    telemetry.stop()

    assert set(telemetry.series) == set(cluster.workers)
    # The status board published the load values the balancer acted on.
    assert len(telemetry.sampler.lb_loads) > 0
    loads = list(telemetry.sampler.lb_loads.rows())
    assert all(row["worker"] in cluster.workers for row in loads)

    run_dir = tmp_path / "cluster-run"
    telemetry.export(run_dir)
    data = load_run(run_dir)
    series_names = {row["series"] for row in data["timeseries"]}
    assert "lb" in series_names
    # LB spans are retained but never confused with invocations.
    summary = data["summary"]
    assert summary["decomposition"]["invocations"] == 6
    assert summary["decomposition"]["matched_records"] == 6


def test_cli_inspect_command(tmp_path, capsys):
    _, telemetry = _run_worker(n_invocations=2, telemetry_config=TelemetryConfig())
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    assert main(["inspect", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "overhead decomposition" in out
    assert "telemetry run" in out


def test_cli_telemetry_env_fallback(tmp_path, monkeypatch, capsys):
    run_dir = tmp_path / "env-run"
    monkeypatch.setenv("REPRO_TELEMETRY", str(run_dir))
    assert main(["--scale", "small", "cluster-study"]) == 0
    out = capsys.readouterr().out
    assert f"telemetry run exported to {run_dir}" in out
    assert (run_dir / "summary.json").exists()
