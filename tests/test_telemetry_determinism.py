"""Telemetry must observe without perturbing: a run with the full pipeline
attached produces bit-identical invocation records to a run without it,
and with telemetry off the hot path allocates nothing new."""

import pytest

from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.loadbalancer.cluster import Cluster
from repro.sim.core import Environment
from repro.telemetry import Telemetry, TelemetryConfig

FUNCTIONS = [
    FunctionRegistration(name="alpha", memory_mb=256, warm_time=0.08, cold_time=0.6),
    FunctionRegistration(name="beta", memory_mb=512, warm_time=0.3, cold_time=1.1),
    FunctionRegistration(name="gamma", memory_mb=128, warm_time=0.02, cold_time=0.25),
]
# (arrival time, function index): overlapping arrivals across workers, so
# queueing, cold starts and container reuse all happen.
ARRIVALS = [
    (0.1, 0), (0.15, 1), (0.2, 0), (0.3, 2), (0.35, 0), (0.4, 1),
    (0.9, 2), (1.0, 0), (1.05, 1), (1.1, 2), (2.5, 0), (2.6, 1),
    (2.7, 2), (2.75, 0), (5.0, 1), (5.2, 2),
]


def _run_cluster(with_telemetry):
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=2,
        config=WorkerConfig(cores=2, memory_mb=2048, seed=7),
        status_interval=2.0,
    )
    telemetry = None
    if with_telemetry:
        telemetry = Telemetry(
            env, TelemetryConfig(interval=0.5, sample_energy=True)
        )
        cluster.attach_telemetry(telemetry)
        telemetry.start()
    cluster.start()
    for reg in FUNCTIONS:
        cluster.register_sync(reg)

    def submit(at, fqdn):
        yield env.timeout(at)
        yield from cluster.invoke(fqdn)

    for at, idx in ARRIVALS:
        env.process(submit(at, FUNCTIONS[idx].fqdn()), name=f"sub-{at}")
    env.run(until=60.0)
    cluster.stop()
    if telemetry is not None:
        telemetry.stop()
    return cluster, telemetry


def _record_tuples(cluster):
    rows = [
        (r.function, r.arrival, r.outcome, r.exec_time, r.e2e_time,
         r.queue_time, r.overhead, r.cold, r.worker)
        for w in cluster.workers.values()
        for r in w.metrics.records
    ]
    rows.sort()
    return rows


def test_telemetry_on_off_bit_identical():
    plain, _ = _run_cluster(with_telemetry=False)
    traced, telemetry = _run_cluster(with_telemetry=True)
    a = _record_tuples(plain)
    b = _record_tuples(traced)
    assert len(a) == len(ARRIVALS)
    # Bit-for-bit: tuple equality on floats, no tolerance.
    assert a == b
    # And the telemetry run really did observe things.
    assert telemetry.sampler.samples > 0
    assert len(telemetry.spans()) > 0
    assert len(telemetry.breakdowns()) == len(ARRIVALS)


def test_energy_identical_with_and_without_sampling():
    plain, _ = _run_cluster(with_telemetry=False)
    traced, _ = _run_cluster(with_telemetry=True)
    for name in plain.workers:
        # joules_at is a pure read; sampling it must not change the
        # monitor's integrated state.
        assert plain.workers[name].energy.joules_at(60.0) == \
            traced.workers[name].energy.joules_at(60.0)


def test_telemetry_off_allocates_nothing():
    cluster, _ = _run_cluster(with_telemetry=False)
    for w in cluster.workers.values():
        assert w.metrics.histograms == {}          # no histogram objects
        assert not w.metrics.latency_histograms_enabled
        assert not w.spans.keep_spans              # no retained Span objects
        assert w.spans.spans() == []
    assert cluster.spans.spans() == []
    assert cluster.status_board.publish is None    # no publish hook installed


def test_telemetry_on_flips_only_observation_switches():
    cluster, telemetry = _run_cluster(with_telemetry=True)
    for w in cluster.workers.values():
        assert w.metrics.latency_histograms_enabled
        assert w.metrics.histograms["e2e_seconds"].count == len(
            [r for r in w.metrics.records]
        ) - sum(1 for r in w.metrics.records if r.outcome.value in ("dropped", "timeout"))
        assert w.spans.keep_spans
    assert cluster.status_board.publish is not None
