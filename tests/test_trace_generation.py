"""Unit tests for the Azure-like dataset generator, replay, and samplers."""

import numpy as np
import pytest

from repro.trace.azure import AzureTraceConfig, generate_dataset
from repro.trace.replay import expand_dataset, expand_minute_bucket
from repro.trace.sampling import (
    sample_random,
    sample_rare,
    sample_representative,
    standard_samples,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        AzureTraceConfig(num_functions=800, duration_minutes=240, seed=123)
    )


# ----------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ValueError):
        AzureTraceConfig(num_functions=0)
    with pytest.raises(ValueError):
        AzureTraceConfig(duration_minutes=0)
    with pytest.raises(ValueError):
        AzureTraceConfig(diurnal_amplitude=1.5)


# --------------------------------------------------------------- generator
def test_generator_deterministic(dataset):
    again = generate_dataset(
        AzureTraceConfig(num_functions=800, duration_minutes=240, seed=123)
    )
    assert dataset.total_invocations() == again.total_invocations()
    assert np.allclose(dataset.memory_mb, again.memory_mb)


def test_generator_seed_changes_output(dataset):
    other = generate_dataset(
        AzureTraceConfig(num_functions=800, duration_minutes=240, seed=124)
    )
    assert dataset.total_invocations() != other.total_invocations()


def test_all_kept_functions_reusable(dataset):
    # The paper drops functions with fewer than two invocations.
    for fn, (_minutes, counts) in dataset.counts.items():
        assert counts.sum() >= 2


def test_minute_indices_in_range(dataset):
    for _fn, (minutes, counts) in dataset.counts.items():
        assert minutes.min() >= 0
        assert minutes.max() < dataset.config.duration_minutes
        assert np.all(counts >= 1)


def test_memory_split_even_within_app(dataset):
    # All functions of one app share the same per-function allocation.
    by_app = {}
    for i, app in enumerate(dataset.apps):
        by_app.setdefault(app, []).append(dataset.memory_mb[i])
    multi = [v for v in by_app.values() if len(v) > 1]
    assert multi, "generator should produce multi-function apps"
    for values in multi:
        assert np.allclose(values, values[0])


def test_heavy_tail_popularity(dataset):
    counts = dataset.invocations_per_function()
    counts = np.sort(counts[counts > 0])[::-1]
    top_10pct = counts[: max(1, counts.size // 10)].sum()
    assert top_10pct / counts.sum() > 0.5  # strong skew


def test_init_cost_nonnegative(dataset):
    assert np.all(dataset.init_cost() >= 0)
    assert np.all(dataset.max_runtime >= dataset.avg_runtime)


# ------------------------------------------------------------------ replay
def test_expand_single_invocation_at_minute_start():
    assert expand_minute_bucket(3, 1).tolist() == [180.0]


def test_expand_multiple_equally_spaced():
    ts = expand_minute_bucket(0, 4)
    assert ts.tolist() == [0.0, 15.0, 30.0, 45.0]


def test_expand_validation():
    with pytest.raises(ValueError):
        expand_minute_bucket(0, 0)
    with pytest.raises(ValueError):
        expand_minute_bucket(-1, 1)


def test_expand_dataset_conserves_counts(dataset):
    trace = expand_dataset(dataset)
    assert len(trace) == dataset.total_invocations()
    assert np.all(np.diff(trace.timestamps) >= 0)
    assert trace.duration == dataset.duration_seconds


def test_expand_dataset_subset(dataset):
    some = sorted(dataset.counts)[:5]
    trace = expand_dataset(dataset, some)
    assert trace.num_functions == 5
    assert len(trace) == sum(dataset.total_invocations(f) for f in some)


def test_expand_dataset_bad_index(dataset):
    with pytest.raises(ValueError):
        expand_dataset(dataset, [10**6])


# ---------------------------------------------------------------- samplers
def test_rare_sample_picks_infrequent(dataset):
    rare = sample_rare(dataset, n=100)
    all_counts = dataset.invocations_per_function()
    eligible = np.array(sorted(dataset.counts))
    median_count = np.median(all_counts[eligible])
    rare_mean = len(rare) / rare.num_functions
    # Rare functions should be invoked well below the population median.
    assert rare_mean <= median_count


def test_rare_sample_size(dataset):
    assert sample_rare(dataset, n=50).num_functions == 50


def test_representative_spans_quartiles(dataset):
    rep = sample_representative(dataset, n=80)
    assert rep.num_functions == 80
    counts = rep.invocation_counts()
    # Should include both light and heavy functions.
    assert counts.min() <= np.percentile(counts, 25)
    assert counts.max() >= 10 * max(counts.min(), 1)


def test_random_sample_size_and_determinism(dataset):
    a = sample_random(dataset, n=40, seed=9)
    b = sample_random(dataset, n=40, seed=9)
    assert a.num_functions == 40
    assert len(a) == len(b)
    assert {f.name for f in a.functions} == {f.name for f in b.functions}


def test_standard_samples_keys(dataset):
    samples = standard_samples(dataset, rare_n=50, representative_n=40, random_n=20)
    assert set(samples) == {"representative", "rare", "random"}
    assert samples["rare"].name == "rare"


def test_sample_n_larger_than_population(dataset):
    huge = sample_random(dataset, n=10**6)
    assert huge.num_functions == len(dataset.counts)
