"""Unit tests for the trace data model (repro.trace.model)."""

import numpy as np
import pytest

from repro.trace.model import Trace, TraceFunction


def F(name="f", mem=100.0, warm=1.0, cold=2.0, app=""):
    return TraceFunction(name=name, memory_mb=mem, warm_time=warm,
                         cold_time=cold, app=app)


def make_trace(ts, idx, functions, duration=None, name="t"):
    return Trace(functions, np.asarray(ts, dtype=float),
                 np.asarray(idx, dtype=np.int64), duration=duration, name=name)


def test_trace_function_validation():
    with pytest.raises(ValueError):
        F(mem=0.0)
    with pytest.raises(ValueError):
        F(warm=-1.0)
    with pytest.raises(ValueError):
        F(warm=2.0, cold=1.0)


def test_trace_function_init_cost():
    assert F(warm=1.0, cold=3.5).init_cost == pytest.approx(2.5)


def test_trace_basic_stats():
    tr = make_trace([0.0, 1.0, 2.0, 3.0], [0, 0, 0, 0], [F()], duration=4.0)
    assert len(tr) == 4
    assert tr.requests_per_second == pytest.approx(1.0)
    assert tr.avg_iat == pytest.approx(1.0)


def test_trace_sorts_unsorted_input():
    tr = make_trace([3.0, 1.0, 2.0], [0, 1, 0], [F("a"), F("b")])
    assert np.all(np.diff(tr.timestamps) >= 0)
    # Function alignment preserved through the sort.
    assert tr.functions[tr.function_idx[0]].name == "b"


def test_trace_rejects_mismatched_arrays():
    with pytest.raises(ValueError):
        make_trace([0.0, 1.0], [0], [F()])


def test_trace_rejects_out_of_range_index():
    with pytest.raises(ValueError):
        make_trace([0.0], [5], [F()])


def test_trace_rejects_negative_timestamps():
    with pytest.raises(ValueError):
        make_trace([-1.0], [0], [F()])


def test_trace_rejects_short_duration():
    with pytest.raises(ValueError):
        make_trace([10.0], [0], [F()], duration=5.0)


def test_invocation_counts():
    tr = make_trace([0.0, 1.0, 2.0], [0, 1, 0], [F("a"), F("b")])
    assert tr.invocation_counts().tolist() == [2, 1]


def test_stats_row_shape():
    tr = make_trace([0.0, 1.0], [0, 0], [F()], duration=2.0, name="rep")
    row = tr.stats_row()
    assert row["trace"] == "rep"
    assert row["num_invocations"] == 2
    assert row["avg_iat_ms"] == pytest.approx(1000.0)


def test_subset_renumbers():
    tr = make_trace([0.0, 1.0, 2.0], [0, 1, 2], [F("a"), F("b"), F("c")])
    sub = tr.subset([2, 0])
    assert [f.name for f in sub.functions] == ["a", "c"]
    assert len(sub) == 2
    assert sub.functions[sub.function_idx[1]].name == "c"


def test_subset_out_of_range():
    tr = make_trace([0.0], [0], [F()])
    with pytest.raises(ValueError):
        tr.subset([3])


def test_clipped_keeps_prefix():
    tr = make_trace([0.0, 5.0, 15.0], [0, 1, 1], [F("a"), F("b")], duration=20.0)
    clipped = tr.clipped(10.0)
    assert len(clipped) == 2
    assert clipped.duration == 10.0
    # Function table restricted to those actually appearing.
    assert {f.name for f in clipped.functions} == {"a", "b"}


def test_clipped_validation():
    tr = make_trace([0.0], [0], [F()])
    with pytest.raises(ValueError):
        tr.clipped(0.0)


def test_merge_layers_traces():
    t1 = make_trace([0.0, 2.0], [0, 0], [F("a")], duration=10.0)
    t2 = make_trace([1.0], [0], [F("b")], duration=5.0)
    merged = Trace.merge([t1, t2])
    assert len(merged) == 3
    assert merged.duration == 10.0
    assert np.all(np.diff(merged.timestamps) >= 0)
    assert merged.num_functions == 2


def test_merge_disambiguates_names():
    t1 = make_trace([0.0], [0], [F("same")])
    t2 = make_trace([1.0], [0], [F("same")])
    merged = Trace.merge([t1, t2])
    names = [f.name for f in merged.functions]
    assert len(set(names)) == 2


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        Trace.merge([])


def test_empty_trace_stats_nan():
    tr = make_trace([], [], [F()], duration=10.0)
    assert np.isnan(tr.avg_iat)
    assert len(tr) == 0
