"""Unit tests for trace scaling (Little's law) and analysis helpers."""

import numpy as np
import pytest

from repro.trace.analysis import (
    iat_percentiles,
    invocations_per_second,
    popularity_skew,
    trace_table,
)
from repro.trace.model import Trace, TraceFunction
from repro.trace.scaling import (
    expected_concurrency,
    little_load,
    scale_to_load,
    scale_trace_iats,
)


def F(name="f", warm=1.0):
    return TraceFunction(name=name, memory_mb=100.0, warm_time=warm,
                         cold_time=warm + 1.0)


def make_trace(ts, idx, functions, duration):
    return Trace(functions, np.asarray(ts, dtype=float),
                 np.asarray(idx, dtype=np.int64), duration=duration)


def test_expected_concurrency_littles_law():
    # 10 invocations over 10 s of a 2 s function: lambda=1, W=2 -> L=2.
    ts = np.arange(10, dtype=float)
    tr = make_trace(ts, [0] * 10, [F(warm=2.0)], duration=10.0)
    conc = expected_concurrency(tr)
    assert conc[0] == pytest.approx(2.0)
    assert little_load(tr) == pytest.approx(2.0)


def test_scale_iats_compresses_arrivals():
    ts = [0.0, 10.0, 20.0]
    tr = make_trace(ts, [0, 0, 0], [F()], duration=100.0)
    halved = scale_trace_iats(tr, 0.5)
    assert halved.timestamps.tolist() == [0.0, 5.0, 10.0]


def test_scale_iats_anchored_at_first_arrival():
    tr = make_trace([50.0, 60.0], [0, 0], [F()], duration=100.0)
    scaled = scale_trace_iats(tr, 2.0)
    assert scaled.timestamps.tolist() == [50.0, 70.0]


def test_scale_iats_drops_overflow():
    tr = make_trace([0.0, 50.0], [0, 0], [F()], duration=60.0)
    stretched = scale_trace_iats(tr, 2.0)
    assert len(stretched) == 1  # second arrival pushed past duration


def test_scale_iats_per_function():
    tr = make_trace([0.0, 10.0, 0.0, 10.0], [0, 0, 1, 1],
                    [F("a"), F("b")], duration=100.0)
    scaled = scale_trace_iats(tr, 1.0, per_function=[0.5, 2.0])
    a_ts = scaled.timestamps[scaled.function_idx == 0]
    b_ts = scaled.timestamps[scaled.function_idx == 1]
    assert a_ts.tolist() == [0.0, 5.0]
    assert b_ts.tolist() == [0.0, 20.0]


def test_scale_iats_validation():
    tr = make_trace([0.0], [0], [F()], duration=10.0)
    with pytest.raises(ValueError):
        scale_trace_iats(tr, 0.0)
    with pytest.raises(ValueError):
        scale_trace_iats(tr, 1.0, per_function=[1.0, 2.0])


def test_scale_to_load_hits_target():
    ts = np.arange(0, 100, 1.0)
    tr = make_trace(ts, [0] * 100, [F(warm=2.0)], duration=100.0)
    # Current load 2.0; halve it.
    scaled = scale_to_load(tr, 1.0)
    assert little_load(scaled) == pytest.approx(1.0, rel=0.1)


def test_scale_to_load_validation():
    tr = make_trace([], [], [F()], duration=10.0)
    with pytest.raises(ValueError):
        scale_to_load(tr, 0.0)
    with pytest.raises(ValueError):
        scale_to_load(tr, 1.0)  # zero-load trace


def test_invocations_per_second_bins():
    tr = make_trace([0.1, 0.2, 5.5], [0, 0, 0], [F()], duration=10.0)
    series = invocations_per_second(tr)
    assert series[0] == 2
    assert series[5] == 1
    assert series.sum() == 3


def test_popularity_skew_extremes():
    # One function with everything -> skew 1.0 at any fraction.
    tr = make_trace([0.0, 1.0, 2.0], [0, 0, 0], [F("hot"), F("cold")],
                    duration=10.0)
    assert popularity_skew(tr, top_fraction=0.5) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        popularity_skew(tr, top_fraction=0.0)


def test_iat_percentiles():
    ts = [0.0, 10.0, 20.0, 0.0, 100.0]
    tr = make_trace(ts, [0, 0, 0, 1, 1], [F("a"), F("b")], duration=200.0)
    pct = iat_percentiles(tr, qs=(50.0,))
    # Mean IATs: a=10, b=100 -> median 55.
    assert pct[50.0] == pytest.approx(55.0)


def test_trace_table_rows():
    tr = make_trace([0.0, 1.0], [0, 0], [F()], duration=2.0)
    rows = trace_table([tr])
    assert rows[0]["num_invocations"] == 2
