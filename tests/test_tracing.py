"""Causal tracing: trace trees, critical paths, flight recorder, exports.

The contract under test, in the order the PR's acceptance gates state it:

* **Zero overhead when off** — with ``TelemetryConfig(trace=False)`` the
  golden reduction, the exported file set, and the span JSONL bytes are
  exactly what they were before tracing existed (manifest.json aside,
  which is always written and deliberately timestamp-free).
* **Rooted trees when on** — every invocation in the golden scenario
  yields one trace tree whose spine is an unbroken parent chain from the
  LB root to its terminal stage, serial and sharded alike.
* **Float-exact attribution** — the critical-path analyzer's per-phase
  sums equal ``Telemetry.breakdowns()`` (the ``decompose_contexts``
  pipeline) with exact float equality, at 1 and 4 shards.
* **Seam-transparent** — the sharded engine's merged trace stream
  reduces to the serial one (ids normalized, shard attribution dropped).
* **Flight recorder + manifest + Perfetto** — the coordinator's
  wall-clock log, the provenance manifest, and the Chrome trace-event
  export all round-trip through the run directory.
"""

import json

import pytest

from tests.golden_scenario import GOLDEN_PATH, normalized, reduce_run, run_scenario
from tests.test_cluster_shard import sharded_golden
from repro.core.lifecycle import COMPLETE
from repro.telemetry import PHASES, TelemetryConfig, inspect_report, load_run
from repro.tracing import (
    COMPONENT_STAGE,
    TraceEvent,
    build_traces,
    chrome_trace,
    critical_path,
    dump_trace_jsonl,
    export_perfetto,
    load_trace_jsonl,
    render_critical_path,
    trace_report,
    verify_against_breakdowns,
)

TRACED = TelemetryConfig(interval=1.0, sample_energy=True, trace=True)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def traced():
    """One serial traced run of the golden scenario: (reduction, telemetry)."""
    return run_scenario(TRACED, return_telemetry=True)


@pytest.fixture(scope="module")
def sharded_traced():
    """One 2-shard traced run with the flight recorder on."""
    return sharded_golden(2, telemetry_config=TRACED, flight_recorder=True)


def _paths(telemetry):
    return [critical_path(t) for t in build_traces(telemetry.trace_events()
            if hasattr(telemetry, "trace_events") else telemetry.traces())]


# ------------------------------------------------------- zero perturbation
def test_tracing_on_preserves_golden_reduction(traced, golden):
    reduction, _ = traced
    assert normalized(reduction) == golden


def test_tracing_off_is_the_untraced_pipeline(golden):
    assert normalized(run_scenario()) == golden


# ------------------------------------------------------------ trace trees
def test_every_invocation_yields_a_rooted_tree(traced):
    _, telemetry = traced
    trees = build_traces(telemetry.trace_events())
    assert len(trees) == len(telemetry.records())
    assert all(t.rooted() for t in trees)
    # The spine roots at the LB pick and runs pick -> rpc -> admit -> ...
    for t in trees:
        chain = t.chain()
        assert chain[0].name == "lb_pick" and chain[0].parent is None
        assert chain[1].name == "lb_rpc" and chain[1].parent == "lb_pick"
        assert chain[2].parent == "lb_rpc"


def test_completed_traces_terminate_in_complete(traced):
    _, telemetry = traced
    paths = _paths(telemetry)
    completed = [p for p in paths if p.breakdown is not None]
    assert completed and all(p.terminal == COMPLETE for p in completed)
    # The scenario's delta function always times out; those trees exist
    # too, just without an exec interval to decompose.
    assert any(p.terminal == "timeout" for p in paths)


def test_component_events_parent_on_their_stage(traced):
    _, telemetry = traced
    for e in telemetry.trace_events():
        if e.kind == "component":
            assert e.parent == COMPONENT_STAGE[e.name]


# -------------------------------------------------- critical-path analysis
@pytest.mark.parametrize("shards", [None, 1, 4])
def test_critical_path_matches_decomposition_exactly(shards, traced):
    """The acceptance gate: trace-derived phase sums == decompose_contexts
    to float precision, serial and at 1 and 4 shards."""
    if shards is None:
        _, telemetry = traced
    else:
        telemetry = sharded_golden(shards, telemetry_config=TRACED).telemetry
    paths = _paths(telemetry)
    breakdowns = telemetry.breakdowns()
    matched, compared = verify_against_breakdowns(paths, breakdowns)
    assert compared == len(breakdowns) > 0
    assert matched == compared


def test_critical_path_covers_e2e_and_finds_queue_wait(traced):
    _, telemetry = traced
    paths = _paths(telemetry)
    # Segments tile the path: first starts at path.start, last ends at end.
    for p in paths:
        assert p.segments[0].start == p.start
        assert max(s.end for s in p.segments) == p.end
        assert p.seam > 0.0          # the golden cluster models the RPC hop
        assert p.worker is not None
    # The burst arrivals must show synthesized queue-wait gaps somewhere.
    assert any(
        seg.kind == "wait" for p in paths for seg in p.segments
    )


def test_render_critical_path_lines(traced):
    _, telemetry = traced
    p = _paths(telemetry)[0]
    lines = render_critical_path(p, label="alpha--0-1 (success)")
    assert lines[0].startswith(f"trace {p.trace_id}")
    assert "e2e" in lines[0] and "(UNROOTED)" not in lines[0]
    assert len(lines) == 1 + len(p.segments)


# --------------------------------------------------------- seam equality
def test_sharded_traces_reduce_to_serial(traced, sharded_traced):
    """Bit-identical causal traces across the shard seam: same events,
    same times, same parents — ids normalized, shard attribution aside."""
    _, serial_tel = traced
    sharded_tel = sharded_traced.telemetry

    def reduce_events(events, records):
        base = min(r.invocation_id for r in records if r.invocation_id)
        return [
            (e.trace_id - base, e.seq, e.name, e.kind, e.start, e.end,
             e.parent, e.worker)
            for e in events
        ]

    serial = reduce_events(serial_tel.trace_events(), serial_tel.records())
    sharded = reduce_events(sharded_tel.traces(), sharded_tel.records())
    assert serial == sharded


def test_sharded_events_carry_owning_shard(sharded_traced):
    events = sharded_traced.telemetry.traces()
    worker_shards = {e.shard for e in events if e.kind != "lb"}
    assert worker_shards == {0, 1}
    # LB events live in the coordinator, not in any shard.
    assert all(e.shard is None for e in events if e.kind == "lb")
    # Shard attribution agrees with the partition (worker 0 | workers 1,2).
    for e in events:
        if e.worker is not None and e.kind != "lb":
            idx = int(e.worker.rsplit("-", 1)[1])
            assert e.shard == (0 if idx < 1 else 1)


def test_span_shard_tagging_follows_the_trace_switch(sharded_traced, golden):
    # Traced sharded runs tag worker spans with the owning shard...
    spans = sharded_traced.telemetry.spans()
    worker_spans = [s for s in spans if not s.name.startswith("lb_")]
    assert worker_spans and {s.shard for s in worker_spans} == {0, 1}
    assert all(s.shard is None for s in spans if s.name.startswith("lb_"))
    # ...untraced ones keep every span untagged (byte-identity with serial).
    untraced = sharded_golden(2, telemetry_config=TelemetryConfig(
        interval=1.0, sample_energy=True)).telemetry
    assert all(s.shard is None for s in untraced.spans())


# --------------------------------------------------------- flight recorder
def test_flight_recorder_totals(sharded_traced):
    log = sharded_traced.flight_log
    assert log is not None
    totals = log["totals"]
    assert totals["epochs"] == len(log["epochs"]) > 0
    assert totals["arrivals"] == 42
    assert totals["stall_s"] >= 0.0 and totals["overlap_s"] >= 0.0
    assert totals["payload_bytes"] > 0
    assert 0.0 <= totals["overlap_efficiency"] <= 1.0
    assert totals["wall_s"] > 0.0
    for row in log["epochs"]:
        assert set(row) == {"epoch", "sync_k", "arrivals", "stall_s",
                            "pick_s", "send_s", "overlap_s", "payload_bytes"}


def test_flight_recorder_off_by_default():
    outcome = sharded_golden(2)
    assert outcome.flight_log is None


# ------------------------------------------------------------ run-dir I/O
def test_traced_export_round_trips(tmp_path, traced):
    _, telemetry = traced
    run_dir = tmp_path / "run"
    paths = telemetry.export(run_dir)
    assert paths["traces"].name == "traces.jsonl"
    events = load_trace_jsonl(paths["traces"])
    assert events == telemetry.trace_events()
    data = load_run(run_dir)
    assert data["traces"] == events
    assert data["manifest"]["config"]["trace"] is True


def test_untraced_export_layout_is_unchanged(tmp_path):
    _, telemetry = run_scenario(return_telemetry=True)
    run_dir = tmp_path / "run"
    paths = telemetry.export(run_dir)
    assert "traces" not in paths and "flight" not in paths
    assert sorted(p.name for p in run_dir.iterdir()) == [
        "manifest.json", "metrics.prom", "records.jsonl", "spans.jsonl",
        "summary.json", "timeseries.jsonl",
    ]
    # Span rows keep their pre-tracing schema: no shard key ever appears.
    first = json.loads((run_dir / "spans.jsonl").read_text().splitlines()[0])
    assert set(first) == {"name", "start", "end", "tag"}


def test_sharded_export_includes_flight_and_manifest(tmp_path, sharded_traced):
    run_dir = tmp_path / "run"
    sharded_traced.telemetry.export(run_dir)
    data = load_run(run_dir)
    assert data["flight"]["totals"]["epochs"] > 0
    assert data["flight"]["seam_stats"] == sharded_traced.seam_stats
    assert data["manifest"]["shards"] == 2
    assert len(data["traces"]) > 0


def test_manifest_hash_is_engine_invariant(tmp_path, traced, sharded_traced):
    serial_dir, sharded_dir = tmp_path / "serial", tmp_path / "sharded"
    traced[1].export(serial_dir)
    sharded_traced.telemetry.export(sharded_dir)
    a = json.loads((serial_dir / "manifest.json").read_text())
    b = json.loads((sharded_dir / "manifest.json").read_text())
    assert a["config_hash"] == b["config_hash"]
    assert a["workers"] == b["workers"]
    assert (a["shards"], b["shards"]) == (1, 2)
    assert a["version"] and a["config"]["trace"] is True


def test_trace_jsonl_omits_none_fields(tmp_path):
    path = tmp_path / "traces.jsonl"
    count = dump_trace_jsonl([
        TraceEvent(trace_id=7, seq=0, name="lb_pick", kind="lb",
                   start=0.5, end=0.5),
        TraceEvent(trace_id=7, seq=2, name="admit", kind="stage",
                   start=0.5, end=0.6, parent="lb_rpc", worker="w-0",
                   shard=3),
    ], path)
    assert count == 2
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert set(rows[0]) == {"trace_id", "seq", "name", "kind", "start", "end"}
    assert rows[1]["parent"] == "lb_rpc" and rows[1]["shard"] == 3
    assert load_trace_jsonl(path)[1].worker == "w-0"


# ---------------------------------------------------------------- perfetto
def test_chrome_trace_schema(traced):
    _, telemetry = traced
    events = telemetry.trace_events()
    doc = chrome_trace(events)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    rows = doc["traceEvents"]
    meta = [r for r in rows if r["ph"] == "M"]
    slices = [r for r in rows if r["ph"] == "X"]
    assert len(meta) == 1 + 3          # LB + three workers
    assert {m["args"]["name"] for m in meta} == {
        "load-balancer", "worker-0-0", "worker-0-1", "worker-0-2",
    }
    assert len(slices) == len(events)
    for r in slices:
        assert set(r) == {"ph", "name", "cat", "pid", "tid", "ts", "dur",
                          "args"}
        assert r["dur"] >= 0.0 and r["cat"] in ("lb", "stage", "component")
    # LB slices sit on pid 0; worker slices on their worker's pid.
    assert {r["pid"] for r in slices if r["cat"] == "lb"} == {0}
    assert {r["pid"] for r in slices if r["cat"] != "lb"} == {1, 2, 3}


def test_export_perfetto_round_trip(tmp_path, traced):
    _, telemetry = traced
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    out = tmp_path / "trace.json"
    slices = export_perfetto(run_dir, out)
    assert slices == len(telemetry.trace_events())
    doc = json.loads(out.read_text())     # parses as strict JSON
    assert len([r for r in doc["traceEvents"] if r["ph"] == "X"]) == slices


def test_export_perfetto_requires_traces(tmp_path):
    with pytest.raises(FileNotFoundError, match="--trace"):
        export_perfetto(tmp_path, tmp_path / "out.json")


# ------------------------------------------------------------- the report
def test_trace_report_renders(tmp_path, traced):
    _, telemetry = traced
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    text = trace_report(run_dir, top=3, percentile=50.0)
    assert "42 traces (38 completed, 42/42 rooted)" in text
    assert "critical-path attribution" in text
    for phase in (*PHASES, "lb_seam", "(exec)"):
        assert phase in text
    assert "top 3 slowest invocations:" in text
    assert "p50 drill-down" in text
    # Labels join through the records: function names appear in the paths.
    assert "beta.1 (cold)" in text and "(timeout)" in text


def test_trace_report_without_traces_is_graceful(tmp_path):
    text = trace_report(tmp_path)
    assert "not traced" in text and "--trace" in text


def test_inspect_report_surfaces_tracing_artifacts(tmp_path, sharded_traced):
    run_dir = tmp_path / "run"
    sharded_traced.telemetry.export(run_dir)
    text = inspect_report(run_dir)
    assert "manifest: version=" in text and "shards=2" in text
    assert "sharded seam: epochs=" in text
    assert "flight recorder: stall=" in text
    assert "causal traces:" in text and "repro trace" in text


# ------------------------------------------------------------------- CLI
def test_cli_trace_command(tmp_path, traced, capsys):
    from repro.cli import main

    _, telemetry = traced
    run_dir = tmp_path / "run"
    telemetry.export(run_dir)
    out_json = tmp_path / "perfetto.json"
    assert main(["trace", str(run_dir), "--top", "2",
                 "--perfetto", str(out_json)]) == 0
    captured = capsys.readouterr().out
    assert "top 2 slowest invocations:" in captured
    assert "trace slices" in captured
    json.loads(out_json.read_text())


def test_cli_trace_flag_requires_telemetry(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["cluster-study", "--trace"])
    assert "--trace requires --telemetry" in capsys.readouterr().err
