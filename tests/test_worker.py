"""Integration tests for the Ilúvatar worker."""

import numpy as np
import pytest

from repro import (
    DuplicateRegistration,
    Environment,
    FunctionRegistration,
    FunctionNotRegistered,
    Worker,
    WorkerConfig,
)
from repro.metrics import Outcome


def make_worker(env=None, **overrides):
    env = env or Environment()
    defaults = dict(backend="null", cores=4, memory_mb=2048.0, seed=3)
    defaults.update(overrides)
    worker = Worker(env, WorkerConfig(**defaults))
    worker.start()
    return env, worker


def reg(name="hello", warm=0.05, cold=0.5, mem=256.0):
    return FunctionRegistration(name=name, warm_time=warm, cold_time=cold,
                                memory_mb=mem)


def test_first_invocation_cold_second_warm():
    env, worker = make_worker()
    worker.register_sync(reg())
    first = env.run_process(worker.invoke("hello.1"))
    assert first.cold
    second = env.run_process(worker.invoke("hello.1"))
    assert not second.cold
    assert second.e2e_time < first.e2e_time


def test_invoke_unregistered_raises():
    env, worker = make_worker()
    with pytest.raises(FunctionNotRegistered):
        worker.async_invoke("ghost.1")


def test_duplicate_registration_rejected():
    env, worker = make_worker()
    worker.register_sync(reg())
    with pytest.raises(DuplicateRegistration):
        worker.register_sync(reg())


def test_register_process_pulls_image():
    env, worker = make_worker()
    fqdn = env.run_process(worker.register(reg()))
    assert fqdn == "hello.1"
    assert env.now > 0  # image pull took time
    assert worker.image_registry.pulls == 1


def test_prewarm_enables_warm_first_invocation():
    env, worker = make_worker()
    worker.register_sync(reg())
    assert env.run_process(worker.prewarm("hello.1"))
    inv = env.run_process(worker.invoke("hello.1"))
    assert not inv.cold


def test_warm_overhead_is_milliseconds():
    env, worker = make_worker()
    worker.register_sync(reg())
    env.run_process(worker.invoke("hello.1"))
    inv = env.run_process(worker.invoke("hello.1"))
    assert inv.overhead < 0.010  # < 10 ms, paper: ~2 ms


def test_concurrent_same_function_burst_mitigated():
    # The queue + regulator keep concurrent cold starts at the concurrency
    # limit, then reuse warm containers (Section 4's herd mitigation).
    env, worker = make_worker(cores=4)
    worker.register_sync(reg(warm=0.4, cold=2.4))
    events = [worker.async_invoke("hello.1") for _ in range(12)]
    env.run(until=120.0)
    done = [e.value for e in events]
    assert all(not i.dropped for i in done)
    assert sum(i.cold for i in done) == 4


def test_queue_overflow_drops():
    env, worker = make_worker(cores=1, queue_max_len=2, bypass_enabled=False)
    worker.register_sync(reg(warm=5.0, cold=10.0))
    events = [worker.async_invoke("hello.1") for _ in range(10)]
    env.run(until=200.0)
    done = [e.value for e in events]
    assert any(i.dropped for i in done)
    assert worker.dropped >= 1
    tally = worker.metrics.outcomes()
    assert tally[Outcome.DROPPED] == worker.dropped


def test_memory_exhaustion_drops_after_timeout():
    env, worker = make_worker(
        memory_mb=300.0,
        free_memory_buffer_mb=0.0,
        memory_wait_timeout=1.0,
        bypass_enabled=False,
    )
    worker.register_sync(reg(name="big", mem=256.0, warm=50.0, cold=60.0))
    worker.register_sync(reg(name="other", mem=256.0, warm=0.1, cold=0.2))
    first = worker.async_invoke("big.1")   # holds all memory for 60 s
    env.run(until=5.0)                      # big is executing now
    second = worker.async_invoke("other.1")
    env.run(until=30.0)
    assert second.triggered
    assert second.value.dropped
    assert second.value.drop_reason == "insufficient memory"
    assert not first.triggered  # still running


def test_bypass_marks_invocations():
    env, worker = make_worker()
    worker.register_sync(reg(warm=0.05, cold=0.5))
    env.run_process(worker.invoke("hello.1"))
    env.run_process(worker.invoke("hello.1"))
    inv = env.run_process(worker.invoke("hello.1"))
    assert inv.bypassed
    assert worker.metrics.count("queue.bypassed") >= 1


def test_bypass_disabled_config():
    env, worker = make_worker(bypass_enabled=False)
    worker.register_sync(reg())
    for _ in range(3):
        inv = env.run_process(worker.invoke("hello.1"))
    assert not inv.bypassed


def test_spans_recorded_for_warm_path():
    env, worker = make_worker()
    worker.register_sync(reg(warm=0.2))  # above bypass threshold
    env.run_process(worker.invoke("hello.1"))
    worker.spans.reset()
    env.run_process(worker.invoke("hello.1"))
    names = set(worker.spans.names())
    for expected in ("invoke", "enqueue_invocation", "dequeue",
                     "acquire_container", "prepare_invoke", "return_results"):
        assert expected in names


def test_status_snapshot_fields():
    env, worker = make_worker()
    worker.register_sync(reg())
    env.run_process(worker.invoke("hello.1"))
    status = worker.status()
    assert status["name"] == worker.name
    assert status["warm_containers"] == 1
    assert status["queue_length"] == 0
    assert status["free_memory_mb"] < 2048.0


def test_characteristics_learned():
    env, worker = make_worker()
    worker.register_sync(reg(warm=0.05, cold=0.5))
    env.run_process(worker.invoke("hello.1"))
    env.run_process(worker.invoke("hello.1"))
    stats = worker.characteristics.get("hello.1")
    assert stats.invocations == 2
    assert stats.cold_invocations == 1
    assert stats.warm_time == pytest.approx(0.05)
    assert stats.cold_time == pytest.approx(0.5)


def test_keepalive_eviction_under_pressure():
    env, worker = make_worker(memory_mb=600.0, free_memory_buffer_mb=0.0)
    for i in range(4):
        worker.register_sync(reg(name=f"f{i}", mem=256.0))
    for i in range(4):
        inv = env.run_process(worker.invoke(f"f{i}.1"))
        assert not inv.dropped
    # Only two 256 MB containers fit; older ones were evicted.
    assert worker.pool.available_count() <= 2
    assert worker.pool.evictions >= 2


def test_dynamic_concurrency_mode_runs():
    env, worker = make_worker(dynamic_concurrency=True)
    worker.register_sync(reg())
    env.run_process(worker.invoke("hello.1"))
    env.run(until=30.0)
    worker.stop()
    assert worker.regulator.limit >= 1


def test_worker_double_start_rejected():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null"))
    worker.start()
    with pytest.raises(RuntimeError):
        worker.start()


def test_async_invoke_returns_event():
    env, worker = make_worker()
    worker.register_sync(reg())
    done = worker.async_invoke("hello.1")
    assert not done.triggered
    env.run(until=10.0)
    assert done.triggered
    assert done.value.completed_at is not None


def test_queue_policy_configurable():
    for policy in ("fcfs", "sjf", "eedf", "rare"):
        env, worker = make_worker(queue_policy=policy)
        worker.register_sync(reg())
        inv = env.run_process(worker.invoke("hello.1"))
        assert inv.completed_at is not None
